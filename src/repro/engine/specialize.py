"""Runtime kernel generator: per-config specialized access kernels.

Given one concrete ``CacheHierarchy`` (geometry, latencies, replacement
policies, memory model) plus its attached monitor, this module *emits
Python source* for a single fused function covering the per-event hot
path — the L1-hit → miss → fill/evict → filter access chain — and
``exec``-compiles it:

* every configuration value (set masks, ways, latencies, slice-hash
  shifts, fingerprint mixes, the pEvict threshold) is baked in as a
  **literal**, so the kernel re-checks nothing per event;
* every stable object (the per-core word maps, the LLC slices, the
  stats block, the filter rows, the ``_alt_xor`` table) is bound as a
  **keyword-only default**, so inside the kernel each is one
  ``LOAD_FAST`` instead of an attribute chain;
* every branch the configuration decides is **resolved at build time**:
  LRU stamping compiles to a plain dict store with no policy dispatch,
  a monitor-less hierarchy compiles a miss path with no hook sites at
  all (the ``none``/monitor-free defences), PiPoMonitor compiles the
  whole Auto-Cuckoo Query/kick-walk *inline* into the miss path, and
  the flat-latency DRAM mode compiles the channel arithmetic inline.

The generated code is a line-for-line specialization of
``CacheHierarchy.access`` and the helpers it fuses
(``_serve_llc_hit``, ``_fill_private``, ``_fill_l1``,
``_fetch_into_llc``, ``_handle_llc_eviction``, ``_mark_written``,
``AutoCuckooFilter.access``/``_insert_new``) — rare coherence actions
(S→M upgrades, cross-core dirty forwards, sharer scrubs, ``clflush``)
still call the hierarchy's own methods, so behaviour is shared by
construction there.  Everything mutates the *same* dicts, stamps, and
counters as the generic engine, which is what lets the golden-trace
conformance suite assert bit-identical results and lets generic paths
(monitor prefetch fills, flushes, introspection) interleave freely
with kernel execution.

Factories are cached by generated source, so an experiment grid that
builds hundreds of identically-configured hierarchies compiles the
kernel once; workers in a fork/spawn pool rebuild lazily from the same
deterministic source.  Unsupported configurations (custom replacement
policies without the array-native protocol, wide fingerprints,
instrumented filters) return ``None`` and the caller falls back to the
generic engine — specialization is an optimisation, never a
requirement.
"""

from __future__ import annotations

from string import Template

from repro.cache.line import (
    DIRTY,
    SHARERS_BITS,
    SHARERS_SHIFT,
    STATE_MASK,
    STATE_SHIFT,
    VERSION_BELOW,
    VERSION_SHIFT,
)
from repro.cache.llc import SLICE_MULT, U64_MASK
from repro.obs.telemetry import current_telemetry

_SMASK = (1 << SHARERS_BITS) - 1
_SHARERS_FIELD = _SMASK << SHARERS_SHIFT
#: ``vword & _VBNSF`` drops sharers + dirty, keeps flags/state (the
#: exact mask ``_handle_llc_eviction`` applies after a sharer scrub).
_VBNSF = VERSION_BELOW & ~_SHARERS_FIELD & ~DIRTY

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407

#: source → exec'd ``make_kernel`` factory (the spec is fully encoded
#: in the source text, so the text is the cache key).
_FACTORY_CACHE: dict[str, object] = {}

#: Telemetry counters the access kernel can publish, in hot-block slot
#: order (see ``Telemetry.kernel_counters``).  Baked into generated
#: source **only** when a telemetry sink is attached at build time —
#: the same build-time gating as the alarm bus (PERFORMANCE.md design
#: rules 15/18) — so a detached build emits byte-identical source to a
#: tree without the obs package.  Slots a monitor kind cannot observe
#: (e.g. filter hits under a generic monitor) simply stay zero.
KERNEL_COUNTER_NAMES = (
    "engine.llc_fills",
    "engine.llc_evictions",
    "engine.monitor_probes",
    "engine.filter_hits",
    "engine.captures",
    "engine.kick_steps",
)


def _ind(block: str, spaces: int) -> str:
    """Indent every non-empty line of ``block`` by ``spaces``."""
    pad = " " * spaces
    return "\n".join(
        pad + line if line else line for line in block.splitlines()
    )


# ----------------------------------------------------------------------
# Filter access emitter (shared by the inline-monitor block and the
# standalone filter kernel)
# ----------------------------------------------------------------------

def filter_subs(flt) -> dict:
    """Literal substitutions for one Auto-Cuckoo filter's Query/insert
    arithmetic (bit-identical to ``AutoCuckooFilter.access``)."""
    slot_mask = flt._slot_mask
    return {
        "FPADD": flt._fp_add,
        "IXADD": flt._index_add,
        "FPMASK": flt.hasher._fp_mask,
        "IXMASK": flt._index_mask,
        "THRESH": flt.security_threshold,
        "MNK": flt.max_kicks,
        "M1": 0xBF58476D1CE4E5B9,
        "M2": 0x94D049BB133111EB,
        "U64": U64_MASK,
        "LCGM": _LCG_MULT,
        "LCGI": _LCG_INC,
        "MEMO_CAP": MEMO_CAP,
        "SLOTPICK": (
            f"(f_st >> 33) & {slot_mask}"
            if slot_mask is not None
            else f"(f_st >> 33) % {flt.entries_per_bucket}"
        ),
    }


def filter_supported(flt) -> bool:
    """Can this filter's access be compiled inline?  Requires the
    ``_alt_xor`` table (f <= 16) and no instrumentation shadow maps."""
    return (
        type(flt).__name__ == "AutoCuckooFilter"
        and flt._alt_xor is not None
        and not flt.instrumented
    )


#: Hash-memo size cap: (fp, i1) pairs are pure functions of the key
#: and the filter seeds, so memoising them is semantically invisible.
#: The cap trades coverage against flood overhead: a repeated key
#: repays ~0.8 µs (two splitmix chains), a never-repeated key costs a
#: failed probe plus a store.  32k entries (~3 MB worst case) covers
#: 4× the Table II filter's reach — the working sets that actually
#: re-access lines — while keeping the clear-when-full wholesale (no
#: per-entry eviction bookkeeping on the hot path).
MEMO_CAP = 32768

#: The fused Query + autonomic-insert block.  ``$KEY`` is the key
#: expression; ``$HIT`` / ``$FRESH`` are the tails for the hit and the
#: fresh-insert outcomes (a ``return`` for the standalone kernel, a
#: ``captured`` assignment for the inline-monitor form).  ``f_sec``
#: holds the post-access Security value on the hit path.
_FILTER_BLOCK = Template("""\
flt.total_accesses += 1
f_v = memo_get($KEY)
if f_v is None:
    f_z = ($KEY + $FPADD) & $U64
    f_z = ((f_z ^ (f_z >> 30)) * $M1) & $U64
    f_z = ((f_z ^ (f_z >> 27)) * $M2) & $U64
    f_fp = (f_z ^ (f_z >> 31)) & $FPMASK
    if not f_fp:
        f_fp = $FPMASK
    f_z = ($KEY + $IXADD) & $U64
    f_z = ((f_z ^ (f_z >> 30)) * $M1) & $U64
    f_z = ((f_z ^ (f_z >> 27)) * $M2) & $U64
    f_i1 = (f_z ^ (f_z >> 31)) & $IXMASK
    if len(memo) >= $MEMO_CAP:
        memo.clear()
    # Packed as one int: ints are not GC-tracked containers, so the
    # memo adds no cyclic-collector pressure (tuples would).
    memo[$KEY] = f_fp << 32 | f_i1
else:
    f_fp = f_v >> 32
    f_i1 = f_v & 4294967295
f_row = fps[f_i1]
if f_fp in f_row:
    f_idx = f_i1
    f_hit = True
else:
    f_idx = f_i1 ^ alt_xor[f_fp]
    f_row = fps[f_idx]
    f_hit = f_fp in f_row
if f_hit:
    f_slot = f_row.index(f_fp)
    f_secrow = security[f_idx]
    f_sec = f_secrow[f_slot]
    if f_sec < $THRESH:
        f_sec += 1
        f_secrow[f_slot] = f_sec
$HIT
else:
    # --- miss: fused _insert_new (never fails; autonomic delete) ---
    f_vrow = fps[f_i1]
    if 0 in f_vrow:
        f_vidx = f_i1
    elif 0 in f_row:
        f_vrow = f_row
        f_vidx = f_idx
    else:
        f_vidx = -1
    if f_vidx >= 0:
        f_slot = f_vrow.index(0)
        f_vrow[f_slot] = f_fp
        security[f_vidx][f_slot] = 0
        flt.valid_count += 1
    else:
        f_st = flt._lcg
        f_st = (f_st * $LCGM + $LCGI) & $U64
        f_kidx = f_i1 if f_st >> 63 else f_idx
        f_cfp = f_fp
        f_csec = 0
        f_rel = 0
        while True:
            f_st = (f_st * $LCGM + $LCGI) & $U64
            f_slot = $SLOTPICK
            f_row = fps[f_kidx]
            f_secrow = security[f_kidx]
            f_cfp, f_row[f_slot] = f_row[f_slot], f_cfp
            f_csec, f_secrow[f_slot] = f_secrow[f_slot], f_csec
            if f_rel == $MNK:
                flt.autonomic_deletions += 1
                flt.total_relocations += f_rel$TKICKA
                flt._lcg = f_st
                break
            f_rel += 1
            f_kidx ^= alt_xor[f_cfp]
            f_row = fps[f_kidx]
            if 0 not in f_row:
                continue
            f_slot = f_row.index(0)
            f_row[f_slot] = f_cfp
            security[f_kidx][f_slot] = f_csec
            flt.valid_count += 1
            flt.total_relocations += f_rel$TKICKB
            flt._lcg = f_st
            break
$FRESH
""")


_FILTER_KERNEL_TEMPLATE = Template("""\
def make_filter_kernel(flt):
    memo = flt._hash_memo
    # Positional (not keyword-only) defaults: CPython fills them with
    # one tuple copy per call, where keyword-only defaults cost a dict
    # lookup each — measurably slower at one call per event.
    def access(key, flt=flt, fps=flt._fps, security=flt._security,
               alt_xor=flt._alt_xor, memo=memo, memo_get=memo.get):
$BODY
    return access
""")


def build_filter_kernel(flt):
    """Compile a standalone fused ``access(key) -> Response`` for one
    filter, or None when the filter cannot be specialized."""
    if not filter_supported(flt):
        return None
    # Mark the rows as captured by a live closure: from here on the C
    # backend must refuse this filter (install after issue would fork
    # the authoritative state between the lists and the C arrays).
    flt._kernel_issued = True
    subs = filter_subs(flt)
    # The standalone filter kernel carries no telemetry sites: its
    # callers (the LSM sweeps, the batch layer) count at batch
    # granularity, and the monitor-inline form in the access kernel
    # is where the per-event counters live.
    body = _FILTER_BLOCK.substitute(
        subs,
        KEY="key",
        HIT=_ind("    return f_sec", 0),
        FRESH=_ind("    return 0", 0),
        TKICKA="",
        TKICKB="",
    )
    source = _FILTER_KERNEL_TEMPLATE.substitute(BODY=_ind(body, 8))
    factory = _FACTORY_CACHE.get(source)
    if factory is None:
        namespace: dict = {}
        exec(compile(source, "<repro-engine-filter-kernel>", "exec"), namespace)
        factory = namespace["make_filter_kernel"]
        _FACTORY_CACHE[source] = factory
    return factory(flt)


# ----------------------------------------------------------------------
# The hierarchy access kernel
# ----------------------------------------------------------------------

#: The inlined ``_fill_private`` (+ ``_mark_written`` for writes).
#: Expects ``state``, ``sl``/``slmap``/``si``, ``l1``/``l1map``,
#: ``l2``/``l2map`` bound; leaves the filled line stamped in L1/L2 and
#: the directory presence bit set.
_FILL_PRIVATE = Template("""\
llc_word = slmap[line_addr]
base = ((llc_word >> $VS) << $VS) | (state << $SSH)
cache_set = l2._sets[line_addr & $L2MASK]
vaddr = None
if len(cache_set) >= $L2WAYS:
    vaddr = min(cache_set, key=cache_set.__getitem__)
    del cache_set[vaddr]
    vword = l2map.pop(vaddr)
    l2.evictions += 1
stamp = l2._stamp + 1
l2._stamp = stamp
cache_set[line_addr] = stamp
l2map[line_addr] = base
if vaddr is not None:
    # L2 eviction: purge L1 copies, write back into the LLC word,
    # release the directory presence bit.
    stats.l2_evictions += 1
    dirty = vword & 1
    version = vword >> $VS
    for l1c in (l1ds[core], l1is[core]):
        wv = l1c._map.pop(vaddr, None)
        if wv is not None:
            del l1c._sets[vaddr & $L1MASK][vaddr]
            if wv & 1:
                v = wv >> $VS
                if v > version:
                    version = v
                dirty = 1
    lmap2 = slices[
        ((vaddr >> $SETBITS) * $SMULT & $U64) >> $SLICESHIFT
    ]._map
    lw2 = lmap2.get(vaddr)
    if lw2 is None:
        raise CV(
            f"inclusion broken: L2 victim {vaddr:#x} absent from LLC"
        )
    if dirty:
        if version > (lw2 >> $VS):
            lw2 = (lw2 & $VB) | (version << $VS)
        lw2 |= 1
    lmap2[vaddr] = lw2 & ~(1 << (core + $SS))
cache_set = l1._sets[line_addr & $L1MASK]
vaddr = None
if len(cache_set) >= $L1WAYS:
    vaddr = min(cache_set, key=cache_set.__getitem__)
    del cache_set[vaddr]
    vword = l1map.pop(vaddr)
    l1.evictions += 1
stamp = l1._stamp + 1
l1._stamp = stamp
cache_set[line_addr] = stamp
l1map[line_addr] = base
if vaddr is not None and vword & 1:
    w2 = l2map.get(vaddr)
    if w2 is not None:
        v = vword >> $VS
        if v > (w2 >> $VS):
            w2 = (w2 & $VB) | (v << $VS)
        l2map[vaddr] = w2 | 1
slmap[line_addr] = llc_word | (1 << (core + $SS))
if op == 1:
    wc = h._write_counter + 1
    h._write_counter = wc
    wm = l1map[line_addr]
    l1map[line_addr] = (wm & $VB) | (wc << $VS) | 1
""")


_KERNEL_TEMPLATE = Template('''\
from repro.cache.coherence import CoherenceViolation
from repro.cache.line import CacheLine, CacheLineView
$OBS_IMPORT

def make_kernel(h, monitor):
    """Bind one hierarchy's state into the specialized access kernel."""
    stats = h.stats
    # Miss-path bindings live as closure cells: a LOAD_DEREF costs a
    # hair more than a LOAD_FAST per use, but cells are free at call
    # time — and the L1-hit call is the case that dominates.
    mc = h.mc
    memver = h._memory_versions
    svic = tuple(sl._victim_addr for sl in h._llc_slices)
    flush_line = h._flush_core_line
    inval = h._invalidate_other_sharers
    scrub = h._scrub_core_copies
    CV = CoherenceViolation
    CLV = CacheLineView
    from_packed = CacheLine.from_packed
$VICTIM_PRELUDE
$PRELUDE
    # Hit-path bindings are positional defaults: CPython fills them
    # with one tuple copy per call (keyword-only defaults would cost a
    # dict lookup each), and inside the body each is a plain local.
    # Callers pass at most (core, op, addr, now).
    def access(core, op, addr, now=0,
               h=h, stats=stats, per_core=stats.per_core_accesses,
               l1ds=tuple(h.l1d), l1is=tuple(h.l1i), l2s=tuple(h.l2),
               slices=tuple(h._llc_slices),
               write_hit=h._write_hit, clflush=h.clflush):
        line_addr = addr >> $LB
        if op == 0:  # OP_READ
            l1 = l1ds[core]
            l1map = l1._map
            if line_addr in l1map:
                l1.hits += 1
                stamp = l1._stamp + 1
                l1._stamp = stamp
                l1._sets[line_addr & $L1MASK][line_addr] = stamp
                stats.l1_hits += 1
                stats.total_latency += $L1LAT
                per_core[core] += 1
                return $L1LAT
        else:
            if op == 3:  # OP_FLUSH — generic service path
                return clflush(core, addr, now)
            l1 = (l1is if op == 2 else l1ds)[core]
            l1map = l1._map
            w = l1map.get(line_addr)
            if w is not None:
                latency = $L1LAT
                l1.hits += 1
                stats.l1_hits += 1
                if op == 1:  # OP_WRITE
                    state = (w >> $SSH) & 3
                    if state != 3:
                        latency += write_hit(core, line_addr, state)
                        w = l1map[line_addr]
                    wc = h._write_counter + 1
                    h._write_counter = wc
                    l1map[line_addr] = (w & $VB) | (wc << $VS) | 1
                    stats.writes += 1
                else:
                    stats.ifetches += 1
                stamp = l1._stamp + 1
                l1._stamp = stamp
                l1._sets[line_addr & $L1MASK][line_addr] = stamp
                stats.total_latency += latency
                per_core[core] += 1
                return latency
        l1.misses += 1
        stats.l1_misses += 1

        # ---- L2 ----
        l2 = l2s[core]
        l2map = l2._map
        w = l2map.get(line_addr)
        if w is not None:
            latency = $L12LAT
            l2.hits += 1
            stats.l2_hits += 1
            if op == 1:
                latency += write_hit(core, line_addr, (w >> $SSH) & 3)
                w = l2map[line_addr]
            # Inlined _fill_l1 (LRU fast path + dirty-victim writeback).
            base = ((w >> $VS) << $VS) | (((w >> $SSH) & 3) << $SSH)
            cache_set = l1._sets[line_addr & $L1MASK]
            vaddr = None
            if len(cache_set) >= $L1WAYS:
                vaddr = min(cache_set, key=cache_set.__getitem__)
                del cache_set[vaddr]
                vword = l1map.pop(vaddr)
                l1.evictions += 1
            stamp = l1._stamp + 1
            l1._stamp = stamp
            cache_set[line_addr] = stamp
            l1map[line_addr] = base
            if vaddr is not None and vword & 1:
                w2 = l2map.get(vaddr)
                if w2 is not None:
                    v = vword >> $VS
                    if v > (w2 >> $VS):
                        w2 = (w2 & $VB) | (v << $VS)
                    l2map[vaddr] = w2 | 1
            if op == 1:
                wc = h._write_counter + 1
                h._write_counter = wc
                wm = l1map[line_addr]
                l1map[line_addr] = (wm & $VB) | (wc << $VS) | 1
            stamp = l2._stamp + 1
            l2._stamp = stamp
            l2._sets[line_addr & $L2MASK][line_addr] = stamp
            stats.total_latency += latency
            if op == 1:
                stats.writes += 1
            elif op == 2:
                stats.ifetches += 1
            per_core[core] += 1
            return latency
        l2.misses += 1
        stats.l2_misses += 1

        # ---- LLC ----
        si = ((line_addr >> $SETBITS) * $SMULT & $U64) >> $SLICESHIFT
        sl = slices[si]
        slmap = sl._map
        lw = slmap.get(line_addr)
        if lw is not None:
            latency = $L123LAT
            stats.llc_hits += 1
            # Inlined _serve_llc_hit.
            others = ((lw >> $SS) & $SMASK) & ~(1 << core)
            if others:
                m = others
                while m:
                    low = m & -m
                    m ^= low
                    if flush_line(low.bit_length() - 1, line_addr, sl):
                        latency += $DFP
                        stats.dirty_forwards += 1
                if op == 1:
                    inval(core, line_addr, sl)
                    state = 3
                else:
                    state = 1
                lw = slmap[line_addr]
            else:
                state = 3 if op == 1 else 2
            if lw & 2:
                slmap[line_addr] = lw | 4
$FILL_PRIVATE_HIT
            stamp = sl._stamp + 1
            sl._stamp = stamp
$LLC_TOUCH
            if op == 1:
                stats.writes += 1
            elif op == 2:
                stats.ifetches += 1
            stats.total_latency += latency
            per_core[core] += 1
            return latency
        stats.llc_misses += 1

        # ---- Memory (inlined _fetch_into_llc, demand fetch) ----
        t = now + $L123LAT
$ON_ACCESS
$MEM_FETCH
        version = memver.get(line_addr, 0)
        base = $FILL_BASE
        cache_set = sl._sets[line_addr & $SLMASK]
        vaddr = None
        if len(cache_set) >= $SLWAYS:
$LLC_VICTIM
            vstamp = cache_set.pop(vaddr)
            vword = slmap.pop(vaddr)
            sl.evictions += 1
        stamp = sl._stamp + 1
        sl._stamp = stamp
        cache_set[line_addr] = stamp
        slmap[line_addr] = base
        if vaddr is not None:
            # Inlined _handle_llc_eviction.
            stats.llc_evictions += 1
$EVICT_HOOK
            sharers = (vword >> $SS) & $SMASK
            if sharers:
                dirty = vword & 1
                version2 = vword >> $VS
                m = sharers
                while m:
                    low = m & -m
                    m ^= low
                    d, v = scrub(low.bit_length() - 1, vaddr)
                    stats.back_invalidations += 1
                    if d:
                        dirty = 1
                        if v > version2:
                            version2 = v
                vword = (vword & $VBNSF) | dirty | (version2 << $VS)
            if vword & 1:
                mc.writeback(vaddr << $LB, t)
                memver[vaddr] = vword >> $VS
                stats.writebacks_to_memory += 1
        state = 3 if op == 1 else 2
$FILL_PRIVATE_MISS
        if op == 1:
            stats.writes += 1
        elif op == 2:
            stats.ifetches += 1
        stats.total_latency += latency
        per_core[core] += 1
        return latency

    return access
''')


def _monitor_kind(monitor, engine: str) -> str:
    """Classify the monitor for specialization (build-time only)."""
    if monitor is None:
        return "none"
    if (
        type(monitor).__name__ == "PiPoMonitor"
        and not getattr(monitor, "needs_all_evictions", True)
        and filter_supported(monitor.filter)
    ):
        if getattr(monitor.filter, "_c_state", None) is not None:
            # The filter is already C-routed (one-way): its arrays are
            # authoritative, so the kernel must keep calling through
            # them whatever engine is selected now.
            return "pipo_c"
        if engine == "c":
            from repro.engine import c_backend

            if c_backend.install(monitor.filter):
                return "pipo_c"
        # The inline-Python kernel closes over the filter's rows —
        # record that so a later C install (which would fork the
        # authoritative state away from those rows) is refused.
        monitor.filter._kernel_issued = True
        return "pipo"
    return "generic"


def _supported(h) -> bool:
    """Structural preconditions for the specialized kernel."""
    private = [*h.l1d, *h.l1i, *h.l2]
    if not all(
        c._touch_stamps and c._insert_stamps and c._victim_is_min_stamp
        for c in private
    ):
        return False
    l1ref, l2ref = h.l1d[0], h.l2[0]
    if not all(
        c._set_mask == l1ref._set_mask and c.ways == l1ref.ways
        for c in (*h.l1d, *h.l1i)
    ):
        return False
    if not all(
        c._set_mask == l2ref._set_mask and c.ways == l2ref.ways for c in h.l2
    ):
        return False
    slices = h._llc_slices
    slref = slices[0]
    return all(
        sl._insert_stamps
        and (sl._victim_is_min_stamp or sl._victim_addr is not None)
        and sl._victim_is_min_stamp == slref._victim_is_min_stamp
        and sl._touch_stamps == slref._touch_stamps
        and sl._set_mask == slref._set_mask
        and sl.ways == slref.ways
        for sl in slices
    )


def build_access_kernel(h, engine: str = "specialized"):
    """Generate, compile, and bind the fused access kernel for one
    hierarchy (+ its currently attached monitor).

    Returns the kernel function, or None when this configuration
    cannot be specialized (the caller falls back to the generic
    ``CacheHierarchy.access``).
    """
    if not _supported(h):
        return None
    monitor = h.monitor
    kind = _monitor_kind(monitor, engine)

    # Telemetry gating (PERFORMANCE.md design rule 18): resolved here,
    # at build time, exactly like the alarm bus below.  With no sink
    # attached every fragment substitutes to the empty string and the
    # emitted source is byte-identical to the pre-observability
    # kernels; with a sink attached the kernel binds a hot block (a
    # plain list) and each site is one indexed ``+= 1``.  The sink's
    # identity joins the kernel cache key in ``hierarchy_access``, so
    # the two variants never alias.
    tele = current_telemetry()
    if tele is not None:
        t_fill = "tele[0] += 1\n"
        t_evict = "tele[1] += 1\n"
        t_probe = "tele[2] += 1\n"
        tele_bind = "    tele = _tele_current().kernel_counters(_TELE_NAMES)"
        obs_import = (
            "from repro.obs.telemetry import current_telemetry as _tele_current\n"
            "from repro.engine.specialize import KERNEL_COUNTER_NAMES as _TELE_NAMES"
        )
    else:
        t_fill = t_evict = t_probe = ""
        tele_bind = ""
        obs_import = ""

    slices = h._llc_slices
    slref = slices[0]
    subs = {
        "LB": h._line_bits,
        "L1LAT": h.l1_latency,
        "L12LAT": h.l1_latency + h.l2_latency,
        "L123LAT": h.l1_latency + h.l2_latency + h.llc_latency,
        "DFP": h.dirty_forward_penalty,
        "L1MASK": h.l1d[0]._set_mask,
        "L2MASK": h.l2[0]._set_mask,
        "L1WAYS": h.l1d[0].ways,
        "L2WAYS": h.l2[0].ways,
        "SLMASK": slref._set_mask,
        "SLWAYS": slref.ways,
        "SETBITS": h._llc_set_bits,
        "SLICESHIFT": h._llc_slice_shift,
        "SMULT": SLICE_MULT,
        "U64": U64_MASK,
        "VS": VERSION_SHIFT,
        "SS": SHARERS_SHIFT,
        "SMASK": _SMASK,
        "SSH": STATE_SHIFT,
        "VB": VERSION_BELOW,
        "VBNSF": _VBNSF,
    }

    fill_private = _FILL_PRIVATE.substitute(subs)
    subs["FILL_PRIVATE_HIT"] = _ind(fill_private, 12)
    subs["FILL_PRIVATE_MISS"] = _ind(fill_private, 8)

    # LLC victim selection / recency update, resolved at build time.
    victim_prelude = ""
    if slref._victim_is_min_stamp:
        llc_victim = "vaddr = min(cache_set, key=cache_set.__getitem__)"
    else:
        llc_victim = "vaddr = svic[si](cache_set)"
        victim_prelude = ""
        policy = slref.policy
        pool = getattr(policy, "pool_size", None)
        if (
            type(policy).__name__ == "LruRandomPolicy"
            and pool is not None
            and all(
                type(sl.policy).__name__ == "LruRandomPolicy"
                and sl.policy.pool_size == pool
                for sl in slices
            )
            and slref.ways >= pool
        ):
            # lru_rand fused: the set holds `ways >= pool_size` lines
            # at eviction time, so the pool is always full and
            # ``randrange(pool_size)`` reduces to the exact
            # ``_randbelow_with_getrandbits`` draw sequence inlined —
            # same Mersenne-Twister stream, no wrapper frames.
            rbits = pool.bit_length()
            llc_victim = (
                "pool = sorted(cache_set, key=cache_set.__getitem__)"
                f"[:{pool}]\n"
                "g = srgb[si]\n"
                f"r = g({rbits})\n"
                f"while r >= {pool}:\n"
                f"    r = g({rbits})\n"
                "vaddr = pool[r]"
            )
            victim_prelude = (
                "    srgb = tuple(sl.policy._rng.getrandbits"
                " for sl in h._llc_slices)"
            )
    subs["VICTIM_PRELUDE"] = victim_prelude
    subs["LLC_VICTIM"] = _ind(llc_victim, 12)
    subs["LLC_TOUCH"] = _ind(
        "sl._sets[line_addr & $SLMASK][line_addr] = stamp"
        if slref._touch_stamps
        else "sl.policy.on_touch(CLV(sl, line_addr), stamp)",
        12,
    ).replace("$SLMASK", str(slref._set_mask))

    # Memory-channel arithmetic: flat-latency DRAM inlines the channel
    # occupancy; the row-buffer model keeps the method call.
    if not h.mc.dram.open_page:
        subs["MEM_FETCH"] = _ind(
            "free_at = mc._channel_free_at\n"
            "start = t if t > free_at else free_at\n"
            f"mc._channel_free_at = start + {h.mc.burst_cycles}\n"
            "mc.total_queue_wait += start - t\n"
            "mc.demand_fetches += 1\n"
            f"latency = {subs['L123LAT']} + start - t + {h.mc.dram.latency}",
            8,
        )
    else:
        subs["MEM_FETCH"] = _ind(
            f"latency = {subs['L123LAT']} + mc.fetch(line_addr << {h._line_bits}, t)",
            8,
        )

    # Monitor specialization (bindings join the closure-cell prelude).
    #
    # Alarm-bus gating happens here, at build time, exactly like
    # ``needs_all_evictions``: a monitor without an attached bus (and
    # every monitor-free config) compiles kernels containing no
    # publish instruction at all, so unmonitored and un-bussed runs
    # pay literally zero for the detection subsystem.  The pEvict
    # publish itself lives inside ``on_llc_eviction`` (the eviction
    # hook is a call in every monitored kernel, never inlined), so it
    # survives specialization by construction — only the *capture*
    # path is fully inlined and therefore needs the publish baked in
    # below.  The baked tuple must stay bit-identical to the generic
    # ``PiPoMonitor.on_access`` publish (kind 0, core -1, sharers 0).
    bus = getattr(monitor, "alarms", None) if monitor is not None else None
    prelude = ""
    evict_gated = (
        "if vword & 2:\n"
        "    victim = from_packed(vaddr, vword, vstamp)\n"
        "    on_evict(victim, t)\n"
        "    vword = victim.to_word()"
    )
    if kind == "none":
        subs["ON_ACCESS"] = _ind(t_fill.rstrip("\n"), 8) if tele is not None else ""
        subs["FILL_BASE"] = f"version << {VERSION_SHIFT}"
        subs["EVICT_HOOK"] = _ind(
            t_evict.rstrip("\n") if tele is not None else "pass", 12
        )
        if tele is not None:
            prelude = tele_bind
    elif kind == "generic":
        # Capture publishing needs no baking here: the generic kind
        # calls the monitor's own ``on_access``, whose publish is the
        # same tuple the pipo kinds inline — streams stay identical.
        prelude = (
            "    mon_access = monitor.on_access\n"
            "    on_evict = monitor.on_llc_eviction"
        )
        subs["ON_ACCESS"] = _ind(
            t_fill + t_probe + "captured = mon_access(line_addr, t)"
            + ("\ntele[4] += captured" if tele is not None else ""),
            8,
        )
        subs["FILL_BASE"] = f"(version << {VERSION_SHIFT}) | (6 if captured else 0)"
        needs_all = getattr(monitor, "needs_all_evictions", True)
        subs["EVICT_HOOK"] = _ind(
            t_evict + evict_gated
            if not needs_all
            else (
                t_evict
                + "victim = from_packed(vaddr, vword, vstamp)\n"
                "on_evict(victim, t)\n"
                "vword = victim.to_word()"
            ),
            12,
        )
    elif kind == "pipo_c":
        track = monitor.captured_lines is not None
        prelude = (
            "    mstats = monitor.stats\n"
            "    c_access = monitor.filter.access\n"
            "    on_evict = monitor.on_llc_eviction"
        )
        if track:
            prelude += "\n    cap_lines = monitor.captured_lines"
        if bus is not None:
            prelude += "\n    publish = monitor.alarms.publish"
        thresh = monitor.filter.security_threshold
        on_access = (
            t_fill + t_probe +
            "mstats.accesses += 1\n"
            f"if c_access(line_addr) >= {thresh}:\n"
            "    mstats.captures += 1\n"
            + ("    cap_lines.add(line_addr)\n" if track else "")
            + ("    publish(0, t, line_addr, -1, 0)\n" if bus is not None else "")
            + ("    tele[4] += 1\n" if tele is not None else "")
            + "    captured = True\n"
            "else:\n"
            "    captured = False"
        )
        subs["ON_ACCESS"] = _ind(on_access, 8)
        subs["FILL_BASE"] = f"(version << {VERSION_SHIFT}) | (6 if captured else 0)"
        subs["EVICT_HOOK"] = _ind(t_evict + evict_gated, 12)
    else:  # pipo — full inline Query/kick-walk
        track = monitor.captured_lines is not None
        prelude = (
            "    mstats = monitor.stats\n"
            "    flt = monitor.filter\n"
            "    fps = flt._fps\n"
            "    security = flt._security\n"
            "    alt_xor = flt._alt_xor\n"
            "    memo = flt._hash_memo\n"
            "    memo_get = memo.get\n"
            "    on_evict = monitor.on_llc_eviction"
        )
        if track:
            prelude += "\n    cap_lines = monitor.captured_lines"
        if bus is not None:
            prelude += "\n    publish = monitor.alarms.publish"
        fsubs = filter_subs(monitor.filter)
        hit_tail = (
            ("    tele[3] += 1\n" if tele is not None else "")
            + "    if f_sec >= {thresh}:\n"
            "        mstats.captures += 1\n"
            + ("        cap_lines.add(line_addr)\n" if track else "")
            + (
                "        publish(0, t, line_addr, -1, 0)\n"
                if bus is not None
                else ""
            )
            + ("        tele[4] += 1\n" if tele is not None else "")
            + "        captured = True\n"
            "    else:\n"
            "        captured = False"
        ).format(thresh=fsubs["THRESH"])
        filter_block = _FILTER_BLOCK.substitute(
            fsubs,
            KEY="line_addr",
            HIT=hit_tail,
            FRESH="    captured = False",
            TKICKA=(
                "\n                tele[5] += f_rel" if tele is not None else ""
            ),
            TKICKB=(
                "\n            tele[5] += f_rel" if tele is not None else ""
            ),
        )
        subs["ON_ACCESS"] = _ind(
            t_fill + t_probe + "mstats.accesses += 1\n"
            + filter_block.rstrip("\n"), 8
        )
        subs["FILL_BASE"] = f"(version << {VERSION_SHIFT}) | (6 if captured else 0)"
        subs["EVICT_HOOK"] = _ind(t_evict + evict_gated, 12)

    if tele is not None and kind != "none":
        prelude += "\n" + tele_bind
    subs["OBS_IMPORT"] = obs_import
    subs["PRELUDE"] = prelude

    source = _KERNEL_TEMPLATE.substitute(subs)
    factory = _FACTORY_CACHE.get(source)
    if factory is None:
        namespace: dict = {}
        exec(compile(source, "<repro-engine-kernel>", "exec"), namespace)
        factory = namespace["make_kernel"]
        _FACTORY_CACHE[source] = factory
    # The kernel closure binds the hierarchy's dicts/stats directly;
    # a later C cache-walk install (which moves the authoritative
    # storage into C arrays) must be refused for this hierarchy or
    # the live closure would silently fork the state — mirror of the
    # filter's ``_kernel_issued`` contract.
    h._walk_issued = True
    return factory(h, monitor)
