"""Engine selection: generic, specialized, or C-backed hot paths.

The simulator has one semantic model and (now) three executions of it:

========================  =============================================
``python``                the generic ``CacheHierarchy.access`` /
                          ``AutoCuckooFilter.access`` methods — the
                          reference implementation every other engine
                          must match bit-for-bit
``specialized`` (default) per-config kernels generated and
                          ``exec``-compiled at runtime
                          (:mod:`repro.engine.specialize`): constants
                          baked in, dead branches removed, the
                          access → fill/evict → filter chain fused
``c``                     the specialized kernel with the Auto-Cuckoo
                          Query/kick-walk additionally compiled to C
                          via cffi (:mod:`repro.engine.c_backend`);
                          degrades to ``specialized`` when no
                          toolchain/cffi is available
========================  =============================================

Selection is by the ``REPRO_ENGINE`` environment variable (so fork and
spawn workers inherit the choice automatically) or the CLI's
``--engine`` flag, resolved **lazily at kernel-bind time** — a core
binds its access entry point when it is constructed, after the monitor
is attached.  Every engine is admissible only because the golden-trace
conformance harness (``tests/conformance/``) replays the full
attack × defence scenario matrix bit-identically under each of them;
an unsupported configuration (custom replacement policy, instrumented
filter, wide fingerprints) silently falls back to the generic engine
rather than approximating.
"""

from __future__ import annotations

import os
import warnings

ENGINES: tuple[str, ...] = ("python", "specialized", "c")
DEFAULT_ENGINE = "specialized"

_ENV_VAR = "REPRO_ENGINE"


def engine_name() -> str:
    """Resolve the selected engine from ``REPRO_ENGINE``.

    Unset/empty selects the default (``specialized``); invalid values
    raise so typos never silently change what is being measured.
    """
    raw = os.environ.get(_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_ENGINE
    if raw not in ENGINES:
        raise ValueError(
            f"{_ENV_VAR} must be one of {ENGINES}, got {raw!r}"
        )
    return raw


def set_engine(name: str) -> None:
    """Select an engine process-wide (and for future worker processes).

    Writes ``REPRO_ENGINE`` so multiprocessing workers — fork or spawn
    — rebuild the same kernels; the CLI's ``--engine`` flag routes
    through here.
    """
    if name not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {name!r}")
    os.environ[_ENV_VAR] = name


class EngineFallbackWarning(UserWarning):
    """The requested engine degraded to a slower one (e.g. ``c`` with
    no cffi/toolchain).  Emitted once per (requested, actual) pair per
    process — loud enough that a fleet report cannot silently mix
    engines, quiet enough not to spam a grid of workers."""


#: (requested, actual) pairs already warned about in this process.
_FALLBACK_WARNED: set[tuple[str, str]] = set()


def note_fallback(requested: str, actual: str, reason: str | None) -> None:
    """Emit the structured once-per-process degradation warning."""
    key = (requested, actual)
    if key in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(key)
    warnings.warn(
        f"REPRO_ENGINE={requested!r} degraded to {actual!r}"
        f" ({reason or 'backend unavailable'}); results are "
        "bit-identical but slower — provenance stamps record the "
        "effective engine",
        EngineFallbackWarning,
        stacklevel=3,
    )


def effective_engine() -> str:
    """The engine that will actually run, after global degradation.

    ``engine_name()`` reports the *request*; this resolves the one
    documented global fallback — ``c`` without a buildable cffi
    extension degrades to ``specialized``, with a structured
    :class:`EngineFallbackWarning` the first time it happens in a
    process.  Provenance stamps (benchmark records, artefact headers,
    ``result.extra["engine"]``) must use this, never the request, so a
    toolchain-less host cannot label specialized-engine numbers as C
    numbers.  (Per-object fallbacks — instrumented filters,
    unsupported policies — remain config-local and are not reflected
    here.)
    """
    name = engine_name()
    if name == "c":
        from repro.engine import c_backend

        if not c_backend.available():
            note_fallback("c", "specialized", c_backend.unavailable_reason())
            return "specialized"
    return name


def engine_provenance() -> dict:
    """The stamp grid cells and fleet reports carry in
    ``result.extra["engine"]``: what was asked for, what actually ran,
    and whether a fallback happened (plus why, when known).

    Conformance digests scrub this key (it is provenance, not
    semantics — results are bit-identical across engines by
    construction), so stamping cannot drift the goldens.
    """
    requested = engine_name()
    effective = effective_engine()
    stamp = {
        "requested": requested,
        "effective": effective,
        "fallback": requested != effective,
    }
    if requested != effective and requested == "c":
        from repro.engine import c_backend

        reason = c_backend.unavailable_reason()
        if reason:
            stamp["reason"] = reason
    return stamp


def available_engines(probe_c: bool = True) -> tuple[str, ...]:
    """The engines this host can actually run.

    ``python`` and ``specialized`` are always available; ``c`` is
    included only when the cffi extension builds (``probe_c=False``
    skips the build attempt).  Used by the engine-parametrized test
    suites and the CI matrix.
    """
    if probe_c:
        from repro.engine import c_backend

        if c_backend.available():
            return ENGINES
    return ("python", "specialized")


def hierarchy_access(h):
    """The per-event access entry point for ``h`` under the selected
    engine: the generic bound method for ``python``, a freshly
    generated (or cached) fused kernel otherwise.

    The kernel is cached on the hierarchy and rebuilt when the engine
    or the attached monitor changes; configurations the specializer
    does not support fall back to the generic method.
    """
    from repro.obs.telemetry import current_telemetry

    cs = getattr(h, "_c_state", None)
    if cs is not None:
        # The C cache walk owns the storage (one-way install): its
        # kernel is the only consistent entry point whatever engine is
        # now selected.  The monitor/bus/telemetry configuration was
        # baked in at install time and cannot be swapped under a live
        # C state.
        if (
            id(h.monitor),
            id(getattr(h.monitor, "alarms", None)),
            id(current_telemetry()),
        ) != cs.monitor_key:
            raise RuntimeError(
                "monitor/alarm-bus/telemetry changed after the C cache "
                "walk was installed; attach monitors, buses, and "
                "telemetry sinks before any core binds its access kernel"
            )
        return cs.kernel
    name = engine_name()
    if name == "python":
        return h.access
    # The alarm bus and the telemetry sink join the cache key: both are
    # resolved at kernel build time (publish instructions are baked in
    # or omitted), so attaching/detaching either must invalidate the
    # cached kernel just like swapping the monitor does.
    key = (
        name,
        id(h.monitor),
        id(getattr(h.monitor, "alarms", None)),
        id(current_telemetry()),
    )
    if h._kernel is not None and h._kernel_key == key:
        return h._kernel
    if name == "c":
        # Full C cache walk first; configurations it cannot take
        # (unsupported policies, open-page DRAM, a Python kernel
        # already bound) fall through to the specialized kernel with
        # the C filter — the pre-walk behaviour of the c engine.
        from repro.engine import c_cache

        if c_cache.install(h):
            kernel = h._c_state.kernel
            h._kernel = kernel
            h._kernel_key = key
            return kernel
        from repro.engine import c_backend

        if not c_backend.available():
            # Toolchain/cffi missing is a host-level degradation and
            # warrants the once-per-process warning; per-config
            # ineligibility is a documented config-local fallback and
            # stays quiet (build_access_kernel still routes the filter
            # through C when it can).
            note_fallback("c", "specialized", c_backend.unavailable_reason())
    from repro.engine.specialize import build_access_kernel

    kernel = build_access_kernel(h, engine=name)
    if kernel is None:
        kernel = h.access
    # The kernel closure keeps the monitor alive, so the id() in the
    # key cannot be recycled while this cache entry exists.
    h._kernel = kernel
    h._kernel_key = key
    return kernel


def filter_access(flt):
    """The per-Access filter entry point under the selected engine.

    Returns a callable ``access(key) -> Response`` operating on
    ``flt``'s state: the generic method for ``python``, the fused
    closure for ``specialized``, and the cffi kernel for ``c`` (with
    graceful fallback down the ladder when a tier is unsupported).
    """
    if getattr(flt, "_c_state", None) is not None:
        # Already routed through C (one-way): its arrays are
        # authoritative, so the C entry point is the only consistent
        # one whatever engine is now selected.
        return flt.access
    name = engine_name()
    if name == "c":
        from repro.engine import c_backend

        if c_backend.install(flt):
            return flt.access
        if not c_backend.available():
            # Toolchain/cffi missing is a host-level degradation and
            # warrants the once-per-process warning; per-filter
            # ineligibility (instrumented, wide fingerprints) is a
            # documented config-local fallback and stays quiet.
            note_fallback("c", "specialized", c_backend.unavailable_reason())
        name = "specialized"
    if name == "specialized":
        from repro.engine.specialize import build_filter_kernel

        kernel = build_filter_kernel(flt)
        if kernel is not None:
            return kernel
    return type(flt).access.__get__(flt, type(flt))


class SpecializedFilterBatch:
    """Batch view over a filter whose ``access_many`` drives the
    per-key specialized kernel; the storage batch ops delegate to the
    reference implementations (state-identical by construction).

    This is the quiet middle rung of the batch ladder: no C toolchain
    (or an ineligible filter) still gets the fused per-key kernel for
    the protocol path instead of dropping all the way to generic.
    """

    __slots__ = ("filter", "_kernel", "_threshold")

    def __init__(self, flt, kernel):
        self.filter = flt
        self._kernel = kernel
        self._threshold = flt.security_threshold

    def access_many(self, keys) -> int:
        kernel = self._kernel
        threshold = self._threshold
        return sum(1 for key in keys if kernel(key) >= threshold)

    def insert_many(self, keys) -> int:
        return self.filter.insert_many(keys)

    def query_many(self, keys) -> int:
        return self.filter.query_many(keys)

    def delete_many(self, keys) -> int:
        return self.filter.delete_many(keys)

    def insert(self, key) -> bool:
        return self.filter.insert(key)

    def query(self, key) -> bool:
        return self.filter.query(key)

    def delete(self, key) -> bool:
        return self.filter.delete(key)


def filter_batch(flt):
    """The batched filter entry points under the selected engine.

    Returns an object exposing ``access_many`` / ``insert_many`` /
    ``query_many`` / ``delete_many`` (plus the scalar storage ops)
    over ``flt``'s state:

    * ``c`` — ``flt`` itself after :func:`c_backend.install` rebinds
      every entry point to the batched C kernels (one boundary
      crossing per ``array('Q')`` buffer);
    * ``specialized`` — a :class:`SpecializedFilterBatch` view driving
      ``access_many`` through the per-key fused kernel;
    * ``python`` (or any unsupported configuration) — ``flt`` itself,
      whose reference batch methods are already inlined loops.

    All rungs are bit-identical over the table state; the ladder and
    fallback semantics mirror :func:`filter_access`.
    """
    if getattr(flt, "_c_state", None) is not None:
        return flt
    name = engine_name()
    if name == "c":
        from repro.engine import c_backend

        if c_backend.install(flt):
            return flt
        if not c_backend.available():
            note_fallback("c", "specialized", c_backend.unavailable_reason())
        name = "specialized"
    if name == "specialized":
        from repro.engine.specialize import build_filter_kernel

        kernel = build_filter_kernel(flt)
        if kernel is not None:
            return SpecializedFilterBatch(flt, kernel)
    return flt
