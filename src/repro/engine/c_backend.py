"""Optional C backend: the Auto-Cuckoo filter kernel and the shared
cffi build for the packed-word cache walk.

``REPRO_ENGINE=c`` routes the two halves of the simulator's hot pair
through one cffi-compiled extension:

* the **filter** Query/kick-walk — fingerprint rows, Security
  counters, the ``_alt_xor`` table and the LCG in flat C arrays, a
  line-for-line exact-uint64 port of
  ``AutoCuckooFilter.access``/``_insert_new`` (this module, installed
  by :func:`install`);
* the **cache walk** — the fused L1 probe → miss walk → LLC
  fill/evict → monitor chain with per-cache tag/word/stamp arrays and
  a C-owned ``_memory_versions`` map (source in
  :mod:`repro.engine._walk_src`, installed by
  :mod:`repro.engine.c_cache`).

Both are held to the same golden-trace conformance suite: every
scenario must replay bit-identically under the C engine.

The extension is **built lazily at first use** and cached under
``~/.cache/repro-engine`` (override with ``REPRO_ENGINE_CACHE``); the
cache key hashes the full generated source plus the interpreter/cffi/
compiler identity, so any edit to the C code (or a toolchain change)
lands in a fresh directory and a stale ``.so`` can never satisfy a
newer source.  When cffi or a C toolchain is missing the build fails
quietly and callers fall back to the specialized Python kernel — the
``c`` engine degrades, it never breaks — but the failure is recorded
(:func:`unavailable_reason`, including the captured compiler error
chain) and surfaced through ``EngineFallbackWarning``.  Workers in a
fork/spawn pool reuse the on-disk artefact, so kernels rebuild cleanly
across process boundaries.

State-consistency contract with the Python object: once
:func:`install` succeeds, *all* accesses go through C (``access`` and
``access_many`` are rebound on the instance).  The scalar counters
(``valid_count``, ``autonomic_deletions``, ``total_relocations``,
``_lcg``) only change on insertions, so they are synced back exactly
when an Access returns 0 (a Response of 0 *is* a fresh insertion);
``total_accesses`` is kept on the Python side.  The fingerprint and
Security rows are materialised back into ``_fps``/``_security`` on
demand by introspection (``AutoCuckooFilter._sync_rows_from_c``).
The cache walk's (batch) sync contract is documented in
:mod:`repro.engine.c_cache` and PERFORMANCE.md design rule 16.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import sys
import sysconfig
import tempfile
import traceback
from pathlib import Path

from array import array

from repro.engine import _filter_batch_src, _walk_src
from repro.obs.telemetry import current_telemetry

_U64 = (1 << 64) - 1

_CDEF = """
typedef struct {
    uint16_t *fps;
    uint8_t *security;
    uint32_t *alt_xor;
    uint64_t lcg;
    uint64_t fp_add;
    uint64_t index_add;
    uint32_t index_mask;
    uint32_t fp_mask;
    uint32_t entries_per_bucket;
    uint32_t slot_mask;
    uint32_t has_slot_mask;
    uint32_t max_kicks;
    uint32_t threshold;
    uint64_t valid_count;
    uint64_t autonomic_deletions;
    uint64_t total_relocations;
} acf_state;

int acf_access(acf_state *st, uint64_t key);
uint64_t acf_access_many(acf_state *st, const uint64_t *keys, uint64_t n);
"""

_CSOURCE = """
#include <stdint.h>
#include <stddef.h>

typedef struct {
    uint16_t *fps;
    uint8_t *security;
    uint32_t *alt_xor;
    uint64_t lcg;
    uint64_t fp_add;
    uint64_t index_add;
    uint32_t index_mask;
    uint32_t fp_mask;
    uint32_t entries_per_bucket;
    uint32_t slot_mask;
    uint32_t has_slot_mask;
    uint32_t max_kicks;
    uint32_t threshold;
    uint64_t valid_count;
    uint64_t autonomic_deletions;
    uint64_t total_relocations;
} acf_state;

/* splitmix64 finisher — identical constants to repro.utils.bitops. */
static inline uint64_t acf_mix(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/* _insert_new: vacancy scan then the LCG kick walk with autonomic
 * deletion at MNK (never fails).  Shared by acf_access's miss path
 * and the storage-mode acf_insert (see _filter_batch_src). */
static void acf_insert_new(acf_state *st, uint32_t fp, uint32_t i1,
                           uint32_t i2)
{
    const uint32_t b = st->entries_per_bucket;
    uint32_t vidx = i1;
    uint16_t *row = st->fps + (size_t)i1 * b;
    int slot = -1;
    for (uint32_t s = 0; s < b; s++)
        if (row[s] == 0) { slot = (int)s; break; }
    if (slot < 0) {
        vidx = i2;
        row = st->fps + (size_t)i2 * b;
        for (uint32_t s = 0; s < b; s++)
            if (row[s] == 0) { slot = (int)s; break; }
    }
    if (slot >= 0) {
        st->fps[(size_t)vidx * b + (size_t)slot] = (uint16_t)fp;
        st->security[(size_t)vidx * b + (size_t)slot] = 0;
        st->valid_count++;
        return;
    }

    uint64_t state = st->lcg;
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    uint32_t kidx = (state >> 63) ? i1 : i2;
    uint32_t carried_fp = fp;
    uint8_t carried_sec = 0;
    uint32_t rel = 0;
    for (;;) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        uint32_t kslot = st->has_slot_mask
            ? (uint32_t)((state >> 33) & st->slot_mask)
            : (uint32_t)((state >> 33) % b);
        uint16_t *krow = st->fps + (size_t)kidx * b;
        uint8_t *ksec = st->security + (size_t)kidx * b;
        uint16_t tf = krow[kslot];
        krow[kslot] = (uint16_t)carried_fp;
        carried_fp = tf;
        uint8_t ts = ksec[kslot];
        ksec[kslot] = carried_sec;
        carried_sec = ts;
        if (rel == st->max_kicks) {
            st->autonomic_deletions++;
            st->total_relocations += rel;
            st->lcg = state;
            return;
        }
        rel++;
        kidx ^= st->alt_xor[carried_fp];
        krow = st->fps + (size_t)kidx * b;
        int empty = -1;
        for (uint32_t s = 0; s < b; s++)
            if (krow[s] == 0) { empty = (int)s; break; }
        if (empty < 0)
            continue;
        krow[empty] = (uint16_t)carried_fp;
        st->security[(size_t)kidx * b + (size_t)empty] = carried_sec;
        st->valid_count++;
        st->total_relocations += rel;
        st->lcg = state;
        return;
    }
}

int acf_access(acf_state *st, uint64_t key)
{
    const uint32_t b = st->entries_per_bucket;
    uint64_t z = acf_mix(key + st->fp_add);
    uint32_t fp = (uint32_t)(z & st->fp_mask);
    if (!fp)
        fp = st->fp_mask;
    uint32_t i1 = (uint32_t)(acf_mix(key + st->index_add) & st->index_mask);
    uint32_t index = i1;
    uint16_t *row = st->fps + (size_t)i1 * b;
    int slot = -1;
    for (uint32_t s = 0; s < b; s++)
        if (row[s] == fp) { slot = (int)s; break; }
    uint32_t i2 = i1 ^ st->alt_xor[fp];
    if (slot < 0) {
        index = i2;
        row = st->fps + (size_t)i2 * b;
        for (uint32_t s = 0; s < b; s++)
            if (row[s] == fp) { slot = (int)s; break; }
    }
    if (slot >= 0) {
        uint8_t *sec = st->security + (size_t)index * b + (size_t)slot;
        uint8_t v = *sec;
        if (v < st->threshold) {
            v++;
            *sec = v;
        }
        return (int)v;
    }

    /* Miss: insert a fresh entry. */
    acf_insert_new(st, fp, i1, i2);
    return 0;
}

uint64_t acf_access_many(acf_state *st, const uint64_t *keys, uint64_t n)
{
    uint64_t captures = 0;
    const int threshold = (int)st->threshold;
    for (uint64_t i = 0; i < n; i++)
        if (acf_access(st, keys[i]) >= threshold)
            captures++;
    return captures;
}
"""

# The batch kernels join the same translation unit right after the
# filter source (they call its static helpers); the cache tag hashes
# the concatenation, so any edit to either lands in a fresh build dir.
_FULL_CDEF = _CDEF + _filter_batch_src.BATCH_CDEF + _walk_src.WALK_CDEF
_FULL_CSOURCE = (
    _CSOURCE + _filter_batch_src.BATCH_SOURCE + _walk_src.WALK_SOURCE
)

_MODULE_NAME = "_repro_engine_c"

#: (ffi, lib) once built/loaded; False after a failed attempt (so a
#: missing toolchain is probed exactly once per process).
_LIB: object = None

#: Diagnosis of the failed build attempt (None while the backend is
#: unprobed or available).  The *whole* exception chain is captured —
#: a compiler failure surfaces as ``VerificationError: ... <-
#: CompileError: ...`` — and feeds the structured fallback warning in
#: :mod:`repro.engine`; degradation stays graceful but is never
#: silent.
_LIB_ERROR: str | None = None


def _format_error_chain(exc: BaseException) -> str:
    """One line per exception in the cause/context chain, newest first
    (so the compiler's actual complaint survives cffi's wrapping)."""
    parts = []
    seen: set[int] = set()
    cur: BaseException | None = exc
    while cur is not None and id(cur) not in seen:
        seen.add(id(cur))
        parts.append("".join(
            traceback.format_exception_only(type(cur), cur)
        ).strip())
        cur = cur.__cause__ or cur.__context__
    return " <- ".join(parts)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_ENGINE_CACHE", "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-engine"


def _load_lib():
    """Build (or load the cached build of) the extension; returns the
    ``(ffi, lib)`` pair or None when cffi/toolchain are unavailable."""
    global _LIB, _LIB_ERROR
    if _LIB is not None:
        return _LIB if _LIB is not False else None
    try:
        import importlib.util

        from cffi import FFI

        # The cache key covers everything that can change the built
        # artefact: the full generated source (cdef + C), the module
        # name, the interpreter ABI, the cffi version, and the
        # compiler identity.  A source edit — even within one repo
        # version — therefore always lands in a fresh directory; a
        # stale cached .so can never be loaded against newer source.
        import cffi as _cffi_mod

        tag = hashlib.sha256("\\x00".join((
            _MODULE_NAME,
            _FULL_CDEF,
            _FULL_CSOURCE,
            sys.version,
            getattr(_cffi_mod, "__version__", "?"),
            str(sysconfig.get_config_var("CC") or ""),
        )).encode()).hexdigest()[:20]
        cache = _cache_dir() / tag
        ffibuilder = FFI()
        ffibuilder.cdef(_FULL_CDEF)
        ffibuilder.set_source(_MODULE_NAME, _FULL_CSOURCE)
        sofile = next(cache.glob(f"{_MODULE_NAME}*.so"), None)
        if sofile is None:
            # Build in a private tempdir *on the cache filesystem*
            # (an os.replace across filesystems raises EXDEV and would
            # leave the cache forever empty), then publish atomically
            # so concurrent fork/spawn workers never observe a
            # half-built artefact (whoever renames first wins; losers
            # reuse it).
            cache.mkdir(parents=True, exist_ok=True)
            tmp = tempfile.mkdtemp(prefix="build-", dir=cache)
            try:
                built = Path(ffibuilder.compile(tmpdir=tmp))
                target = cache / built.name
                if not target.exists():
                    try:
                        os.replace(built, target)
                    except OSError:
                        try:
                            shutil.copy2(built, target)
                        except OSError:
                            pass
                sofile = target if target.exists() else built
                if sofile == built:
                    # Could not publish: load in place before cleanup.
                    spec = importlib.util.spec_from_file_location(
                        _MODULE_NAME, sofile
                    )
                    mod = importlib.util.module_from_spec(spec)
                    spec.loader.exec_module(mod)
                    _LIB = (mod.ffi, mod.lib)
                    return _LIB
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
        spec = importlib.util.spec_from_file_location(_MODULE_NAME, sofile)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        _LIB = (mod.ffi, mod.lib)
    except Exception as exc:
        _LIB = False
        _LIB_ERROR = _format_error_chain(exc)
        return None
    return _LIB


def available() -> bool:
    """True when the C backend can be (or already was) built."""
    return _load_lib() is not None


def unavailable_reason() -> str | None:
    """Why the last build attempt failed (None when available or
    unprobed) — e.g. ``ModuleNotFoundError: No module named 'cffi'``."""
    _load_lib()
    return _LIB_ERROR


class CFilterState:
    """Owner of one filter's C-side arrays (keeps cffi buffers alive)."""

    __slots__ = ("ffi", "lib", "st", "_fps_buf", "_sec_buf", "_alt_buf")

    def __init__(self, ffi, lib, flt):
        self.ffi = ffi
        self.lib = lib
        l, b = flt.num_buckets, flt.entries_per_bucket
        flat_fps = [fp for row in flt._fps for fp in row]
        flat_sec = [s for row in flt._security for s in row]
        self._fps_buf = ffi.new("uint16_t[]", flat_fps)
        self._sec_buf = ffi.new("uint8_t[]", flat_sec)
        self._alt_buf = ffi.new("uint32_t[]", flt._alt_xor)
        st = ffi.new("acf_state *")
        st.fps = self._fps_buf
        st.security = self._sec_buf
        st.alt_xor = self._alt_buf
        st.lcg = flt._lcg
        st.fp_add = flt._fp_add
        st.index_add = flt._index_add
        st.index_mask = flt._index_mask
        st.fp_mask = flt.hasher._fp_mask
        st.entries_per_bucket = b
        st.slot_mask = flt._slot_mask if flt._slot_mask is not None else 0
        st.has_slot_mask = 1 if flt._slot_mask is not None else 0
        st.max_kicks = flt.max_kicks
        st.threshold = flt.security_threshold
        st.valid_count = flt.valid_count
        st.autonomic_deletions = flt.autonomic_deletions
        st.total_relocations = flt.total_relocations
        self.st = st

    def rows(self, num_buckets: int, entries_per_bucket: int):
        """Materialise (fps, security) back as lists-of-lists."""
        b = entries_per_bucket
        flat_fps = list(self._fps_buf)
        flat_sec = list(self._sec_buf)
        fps = [flat_fps[i * b:(i + 1) * b] for i in range(num_buckets)]
        sec = [flat_sec[i * b:(i + 1) * b] for i in range(num_buckets)]
        return fps, sec


def install(flt) -> bool:
    """Route all of ``flt``'s accesses through the C kernels.

    Copies the current table into C arrays and rebinds ``access`` /
    ``access_many`` plus the storage-mode surface (``insert`` /
    ``query`` / ``delete``, their ``*_many`` batch forms, and
    ``contains``) on the *instance*; returns False (leaving the filter
    untouched) when the filter is ineligible (instrumented, wide
    fingerprints) or the extension cannot be built.  Idempotent.

    Batch calls cross the boundary once per ``array('Q')`` buffer
    (zero-copy via ``ffi.from_buffer``); counters sync back per the
    contract in the module docstring (insert-side counters on fresh
    insertions, ``valid_count`` on deletions, nothing on queries).
    """
    if getattr(flt, "_c_state", None) is not None:
        return True
    if flt.instrumented or flt._alt_xor is None:
        return False
    if getattr(flt, "_kernel_issued", False):
        # A specialized Python kernel already closed over this
        # filter's rows; moving the authoritative state into C now
        # would let that live closure silently fork the table.  The
        # filter stays on the (consistent) Python engines instead.
        return False
    pair = _load_lib()
    if pair is None:
        return False
    ffi, lib = pair
    state = CFilterState(ffi, lib, flt)
    st = state.st
    c_access = lib.acf_access
    c_access_many = lib.acf_access_many
    c_insert = lib.acf_insert
    c_query = lib.acf_query
    c_delete = lib.acf_delete
    c_insert_many = lib.acf_insert_many
    c_query_many = lib.acf_query_many
    c_delete_many = lib.acf_delete_many
    u64_new = ffi.new
    from_buffer = ffi.from_buffer

    def _key_buffer(keys):
        """(buffer, n) over a key batch — zero-copy for ``array('Q')``
        (the storage workloads' native container: cffi views the
        existing bytes), one list copy for any other iterable."""
        if isinstance(keys, array) and keys.typecode == "Q":
            return from_buffer("uint64_t[]", keys), len(keys)
        key_list = [k & _U64 for k in keys]
        return u64_new("uint64_t[]", key_list), len(key_list)

    def _sync_insert_counters(_st=st, _flt=flt):
        # Everything a fresh insertion can move; queries move nothing.
        _flt.valid_count = _st.valid_count
        _flt.autonomic_deletions = _st.autonomic_deletions
        _flt.total_relocations = _st.total_relocations
        _flt._lcg = _st.lcg

    def access(key, _c=c_access, _st=st, _flt=flt, _u64=_U64):
        r = _c(_st, key & _u64)
        _flt.total_accesses += 1
        if r == 0:
            # A Response of 0 is exactly a fresh insertion — the only
            # event that moves the insert-side counters.
            _sync_insert_counters()
        return r

    # Telemetry export (rule 17 shape): the sink attached at install
    # time receives aggregate counters folded once per batch — the C
    # call count is unchanged, and a detached install pays one dead
    # ``is None`` branch per *batch*, nothing per key.
    tele = current_telemetry()

    def access_many(keys, _c=c_access_many, _st=st, _flt=flt, _tele=tele):
        buf, n = _key_buffer(keys)
        rel0 = _st.total_relocations if _tele is not None else 0
        captures = _c(_st, buf, n)
        _flt.total_accesses += n
        _sync_insert_counters()
        if _tele is not None:
            _tele.count("filter.probes", n)
            if captures:
                _tele.count("filter.captures", captures)
            kicks = _st.total_relocations - rel0
            if kicks:
                _tele.count("filter.kick_steps", kicks)
        return captures

    def insert(key, _c=c_insert, _st=st, _u64=_U64):
        r = _c(_st, key & _u64)
        if r:
            _sync_insert_counters()
        return bool(r)

    def insert_many(keys, _c=c_insert_many, _st=st, _tele=tele):
        buf, n = _key_buffer(keys)
        rel0 = _st.total_relocations if _tele is not None else 0
        fresh = _c(_st, buf, n)
        _sync_insert_counters()
        if _tele is not None:
            _tele.count("filter.inserts", n)
            if fresh:
                _tele.count("filter.fresh_inserts", fresh)
            kicks = _st.total_relocations - rel0
            if kicks:
                _tele.count("filter.kick_steps", kicks)
        return fresh

    def query(key, _c=c_query, _st=st, _u64=_U64):
        return bool(_c(_st, key & _u64))

    def query_many(keys, _c=c_query_many, _st=st):
        buf, n = _key_buffer(keys)
        return _c(_st, buf, n)

    def delete(key, _c=c_delete, _st=st, _flt=flt, _u64=_U64):
        r = _c(_st, key & _u64)
        if r:
            _flt.valid_count = _st.valid_count
        return bool(r)

    def delete_many(keys, _c=c_delete_many, _st=st, _flt=flt):
        buf, n = _key_buffer(keys)
        removed = _c(_st, buf, n)
        _flt.valid_count = _st.valid_count
        return removed

    flt._c_state = state
    flt.access = access
    flt.access_many = access_many
    flt.insert = insert
    flt.insert_many = insert_many
    flt.query = query
    flt.query_many = query_many
    flt.delete = delete
    flt.delete_many = delete_many
    # ``contains`` is exactly the storage query: serve it from C
    # directly (read-only, no sync needed).
    flt.contains = query
    # Hit-path reads that consult the Python rows must resync first.
    for name in ("security_of", "entries", "bucket"):
        bound = getattr(flt, name)

        def synced(*args, _bound=bound, _flt=flt, **kwargs):
            _flt._sync_rows_from_c()
            return _bound(*args, **kwargs)

        setattr(flt, name, synced)
    return True
