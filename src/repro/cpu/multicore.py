"""Multicore scheduler: advance the earliest core first.

Shared structures (LLC, filter, memory channel) therefore observe
memory operations in global timestamp order, and scheduled events
(PiPoMonitor's delayed prefetches) fire before any operation with a
later timestamp touches the hierarchy — the property the defense
evaluation depends on.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field

from repro.cache.hierarchy import AccessStats, CacheHierarchy
from repro.cpu.core import Core
from repro.utils.events import EventQueue


@dataclass
class SimulationResult:
    """Outcome of one multicore run."""

    core_times: list[int]
    core_instructions: list[int]
    core_memory_ops: list[int]
    stats: AccessStats
    monitor_stats: object | None = None
    extra: dict = field(default_factory=dict)

    @property
    def mean_time(self) -> float:
        """Average per-core completion time — the 'overall execution
        time' the paper compares (Section VII-A)."""
        return sum(self.core_times) / len(self.core_times)

    @property
    def max_time(self) -> int:
        return max(self.core_times)

    @property
    def total_instructions(self) -> int:
        return sum(self.core_instructions)


class MulticoreSystem:
    """Cores + hierarchy + event queue, run to an instruction budget."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        cores: list[Core],
        events: EventQueue | None = None,
        detection=None,
    ):
        if not cores:
            raise ValueError("at least one core required")
        self.hierarchy = hierarchy
        self.cores = cores
        self.events = events if events is not None else EventQueue()
        #: Optional online :class:`repro.detection.DetectionUnit`.
        #: The scheduler itself never consults it (alarms reach it
        #: through the bus, responses through the event queue); it is
        #: held here so the run's result carries its report.
        self.detection = detection

    def run(self, max_instructions_per_core: int | None = None) -> SimulationResult:
        """Run every core until its workload ends or it retires the
        instruction budget; then drain remaining events."""
        if max_instructions_per_core is not None and max_instructions_per_core <= 0:
            raise ValueError("instruction budget must be positive")
        # Scheduler keys are single ints, ``time << 8 | core_id`` —
        # identical ordering (time, then core id) to the former tuple
        # keys, but int comparisons and no per-push allocation.
        if len(self.cores) > 256:
            raise ValueError("scheduler supports at most 256 cores")
        heap: list[int] = []
        for core in self.cores:
            if core.advance():
                heapq.heappush(heap, core.time << 8 | core.core_id)
        completion = {core.core_id: core.time for core in self.cores}
        # Hot loop: one iteration per memory operation across all
        # cores.  Locals for everything touched every iteration; the
        # event-queue drain is skipped outright while no events are
        # scheduled (the monitor-less baseline never schedules any);
        # ``heapreplace`` re-queues a stepped core with one sift
        # instead of a pop + push pair.
        heapreplace = heapq.heapreplace
        heappop = heapq.heappop
        cores = self.cores
        events = self.events
        run_until = events.run_until
        # The heap list object itself is stable (EventQueue only ever
        # mutates it in place), so one binding outlives the loop.
        event_heap = events._heap
        budget = (
            max_instructions_per_core
            if max_instructions_per_core is not None
            else float("inf")
        )
        # The loop allocates only acyclic objects (record tuples,
        # ints) that reference counting frees immediately, so the
        # cyclic collector's periodic gen-0 sweeps are pure overhead
        # here — pause it for the duration of the run.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while heap:
                key = heap[0]
                cid = key & 255
                core = cores[cid]
                # Fire every event due at or before this operation.
                if event_heap:
                    run_until(key >> 8)
                if core.step(budget):
                    heapreplace(heap, core.time << 8 | cid)
                else:
                    heappop(heap)
                    completion[cid] = core.time
            # Late events (e.g. prefetches scheduled near the end).
            while (next_time := self.events.next_time()) is not None:
                self.events.run_until(next_time)
        finally:
            if gc_was_enabled:
                gc.enable()
        # Under the C cache walk, the Python-side mirrors (cache dicts,
        # AccessStats, monitor/filter counters, _memory_versions) are
        # stale until a batch sync; resync here so the result below —
        # and any post-run introspection — reads consistent state.
        self.hierarchy.engine_sync()
        monitor = self.hierarchy.monitor
        result = SimulationResult(
            core_times=[completion[c.core_id] for c in self.cores],
            core_instructions=[c.instructions for c in self.cores],
            core_memory_ops=[c.memory_ops for c in self.cores],
            stats=self.hierarchy.stats,
            monitor_stats=getattr(monitor, "stats", None),
        )
        if self.detection is not None:
            result.extra["detection"] = self.detection.report()
        return result
