"""Timing CPU substrate: generator-driven in-order cores and the
multicore scheduler that interleaves them in global time order."""

from repro.cpu.core import Core
from repro.cpu.multicore import MulticoreSystem, SimulationResult
from repro.cpu.system import build_system, run_workloads

__all__ = [
    "Core",
    "MulticoreSystem",
    "SimulationResult",
    "build_system",
    "run_workloads",
]
