"""In-order blocking core model.

A core executes a *workload generator*: a Python generator yielding
``(compute_instructions, op, byte_address)`` records and receiving the
latency of its previous memory operation via ``send`` (attack code uses
that feedback to time its probes, exactly like ``rdtsc`` around a load).

Timing model: non-memory instructions retire at CPI = 1; a memory
operation blocks the core for the hierarchy-reported latency.  ``op``
may be ``None`` for a pure-compute record.

The core advances in two phases so the multicore scheduler can
interleave shared-state mutations in global time order:

* :meth:`advance`  — consume the next record and add its compute time;
  after it returns, ``time`` is the cycle at which the pending memory
  operation will reach the hierarchy.
* :meth:`execute_pending` — perform that operation and add its latency.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.workloads.base import WorkloadGenerator


class Core:
    """One hardware thread bound to a private L1/L2 stack."""

    def __init__(
        self,
        core_id: int,
        workload: WorkloadGenerator,
        hierarchy: CacheHierarchy,
    ):
        self.core_id = core_id
        self.workload = workload
        self.hierarchy = hierarchy
        self.time = 0
        self.instructions = 0
        self.memory_ops = 0
        self.finished = False
        self._pending: tuple[int, int] | None = None
        self._last_latency = 0
        self._primed = False

    def advance(self) -> bool:
        """Consume the next workload record (compute phase).

        Returns False when the workload generator is exhausted, in
        which case the core is marked finished.
        """
        if self.finished:
            return False
        try:
            if self._primed:
                item = self.workload.send(self._last_latency)
            else:
                item = next(self.workload)
                self._primed = True
        except StopIteration:
            self.finished = True
            return False
        compute, op, addr = item
        if compute < 0:
            raise ValueError("compute instruction count must be >= 0")
        self.time += compute
        self.instructions += compute
        if op is None:
            self._pending = None
            self._last_latency = 0
        else:
            self._pending = (op, addr)
        return True

    def execute_pending(self) -> None:
        """Perform the memory operation scheduled by :meth:`advance`."""
        if self._pending is None:
            return
        op, addr = self._pending
        latency = self.hierarchy.access(self.core_id, op, addr, now=self.time)
        self.time += latency
        self.instructions += 1
        self.memory_ops += 1
        self._last_latency = latency
        self._pending = None

    def __repr__(self) -> str:
        return (
            f"Core({self.core_id}, t={self.time}, "
            f"insns={self.instructions}, "
            f"{'finished' if self.finished else 'running'})"
        )
