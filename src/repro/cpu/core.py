"""In-order blocking core model.

A core executes a *workload generator*: a Python generator yielding
``(compute_instructions, op, byte_address)`` records and receiving the
latency of its previous memory operation via ``send`` (attack code uses
that feedback to time its probes, exactly like ``rdtsc`` around a load).

Timing model: non-memory instructions retire at CPI = 1; a memory
operation blocks the core for the hierarchy-reported latency.  ``op``
may be ``None`` for a pure-compute record.

The core advances in two phases so the multicore scheduler can
interleave shared-state mutations in global time order:

* :meth:`advance`  — consume the next record and add its compute time;
  after it returns, ``time`` is the cycle at which the pending memory
  operation will reach the hierarchy.
* :meth:`execute_pending` — perform that operation and add its latency.

Chunked batch prefetch
----------------------
Workloads that ignore latency feedback (``workload.batchable``) can be
bound through ``batches`` — an iterator of record-tuple chunks
(:meth:`repro.workloads.base.Workload.record_chunks`).  The core then
pops one record per step from its current chunk instead of resuming a
generator frame per record.  Interleave semantics are untouched: the
scheduler still hands out exactly one record per step, and the chunked
stream is record-for-record identical to the generator (pinned by the
golden-equivalence tests) — prefetching only moves *production* of
future records earlier, which is legal precisely because these
workloads cannot react to simulation state.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.workloads.base import WorkloadGenerator


class Core:
    """One hardware thread bound to a private L1/L2 stack."""

    __slots__ = (
        "core_id",
        "workload",
        "hierarchy",
        "time",
        "instructions",
        "memory_ops",
        "finished",
        "_pending_op",
        "_pending_addr",
        "_last_latency",
        "_primed",
        "_send",
        "_access",
        "_batches",
        "_chunk",
        "_chunk_len",
        "_chunk_pos",
        "_throttle_base",
        "_l1d",
        "_l1_latency",
        "_line_bits",
        "_stats",
    )

    def __init__(
        self,
        core_id: int,
        workload: WorkloadGenerator | None,
        hierarchy: CacheHierarchy,
        batches=None,
    ):
        if (workload is None) == (batches is None):
            raise ValueError(
                "exactly one of workload (generator) or batches must be given"
            )
        self.core_id = core_id
        self.workload = workload
        self.hierarchy = hierarchy
        self.time = 0
        self.instructions = 0
        self.memory_ops = 0
        self.finished = False
        # Pending memory op as two plain slots (op None = no op):
        # packing/unpacking a tuple per record is measurable in the
        # scheduler loop.
        self._pending_op: int | None = None
        self._pending_addr = 0
        self._last_latency = 0
        self._primed = False
        # Bound-method caches for the calls made per scheduler step;
        # the advance/execute loop dominates simulation time.  The
        # access entry point is resolved through the engine seam
        # (REPRO_ENGINE): cores are constructed after the monitor is
        # attached, so the specialized kernel binds the final monitor
        # configuration.
        self._send = workload.send if workload is not None else None
        self._access = hierarchy.engine_access()
        # This core's own L1D plus the shared stats block, resolved
        # once: ~3/4 of all memory operations are L1 read hits, and
        # the step loop below serves those without entering ``access``.
        # Under the C cache walk the Python dicts are a stale mirror
        # between syncs, so the inline probe is disabled (None) and
        # every op goes through the kernel — which serves the L1 read
        # hit in C anyway.
        self._l1d = (
            hierarchy.l1d[core_id] if hierarchy._c_state is None else None
        )
        self._l1_latency = hierarchy.l1_latency
        self._line_bits = hierarchy._line_bits
        self._stats = hierarchy.stats
        self._batches = batches
        self._chunk = None
        self._chunk_len = 0
        self._chunk_pos = 0
        # Original access binding while a throttle wrapper is active
        # (None = unthrottled).  Throttling swaps the binding instead
        # of adding a per-op check, so unthrottled cores — the only
        # state outside an active OS response — pay zero.
        self._throttle_base = None

    # ------------------------------------------------------------------
    # OS response hook: throttling
    # ------------------------------------------------------------------

    def throttle(self, penalty: int) -> None:
        """Add ``penalty`` cycles to every operation served through
        the access kernel (anything past the inline L1 read hit — the
        probes, flushes, and misses an attack consists of).

        Re-throttling replaces the previous wrapper (penalties do not
        stack).  Implemented by wrapping the engine access binding, so
        it composes with every engine and never touches the shared
        hierarchy state.
        """
        if penalty < 1:
            raise ValueError("penalty must be >= 1")
        if self._throttle_base is None:
            self._throttle_base = self._access
        base = self._throttle_base

        def throttled(core, op, addr, now=0, _base=base, _penalty=penalty):
            return _base(core, op, addr, now) + _penalty

        self._access = throttled

    def unthrottle(self) -> None:
        """Restore the unpenalised access binding (no-op if not
        throttled)."""
        if self._throttle_base is not None:
            self._access = self._throttle_base
            self._throttle_base = None

    @property
    def throttled(self) -> bool:
        return self._throttle_base is not None

    def advance(self) -> bool:
        """Consume the next workload record (compute phase).

        Returns False when the workload stream is exhausted, in which
        case the core is marked finished.
        """
        if self.finished:
            return False
        if self._batches is not None:
            return self._advance_batched()
        try:
            if self._primed:
                item = self._send(self._last_latency)
            else:
                item = next(self.workload)
                self._primed = True
        except StopIteration:
            self.finished = True
            return False
        compute, op, addr = item
        if compute < 0:
            raise ValueError("compute instruction count must be >= 0")
        self.time += compute
        self.instructions += compute
        if op is None:
            self._pending_op = None
            self._last_latency = 0
        else:
            self._pending_op = op
            self._pending_addr = addr
        return True

    def _advance_batched(self) -> bool:
        """Pop one record tuple from the prefetched chunk."""
        pos = self._chunk_pos
        if pos >= self._chunk_len:
            try:
                chunk = next(self._batches)
            except StopIteration:
                self.finished = True
                return False
            self._chunk = chunk
            self._chunk_len = len(chunk)
            pos = 0
        compute, op, addr = self._chunk[pos]
        self._chunk_pos = pos + 1
        self.time += compute
        self.instructions += compute
        if op is None:
            self._pending_op = None
            self._last_latency = 0
        else:
            self._pending_op = op
            self._pending_addr = addr
        return True

    def execute_pending(self) -> None:
        """Perform the memory operation scheduled by :meth:`advance`."""
        op = self._pending_op
        if op is None:
            return
        latency = self._access(self.core_id, op, self._pending_addr, self.time)
        self.time += latency
        self.instructions += 1
        self.memory_ops += 1
        self._last_latency = latency
        self._pending_op = None

    def step(self, budget: int | float) -> bool:
        """Execute the pending operation, then advance one record.

        The scheduler's per-operation unit of work as a single call
        (``execute_pending`` + budget check + ``advance``), saving two
        method dispatches per memory operation.  ``budget`` is the
        per-core instruction budget (``float('inf')`` for unbounded).
        Returns False — with the core marked finished — when the
        budget is exhausted or the workload ends.
        """
        op = self._pending_op
        if op is not None:
            if op == 0:
                # Inline L1 read hit (identical effect to ``access``,
                # which the golden-equivalence suite pins): the
                # dominant case pays no call, no attribute chase.
                l1 = self._l1d
                line_addr = self._pending_addr >> self._line_bits
                if l1 is not None and line_addr in l1._map and l1._touch_stamps:
                    stamp = l1._stamp + 1
                    l1._stamp = stamp
                    l1._sets[line_addr & l1._set_mask][line_addr] = stamp
                    l1.hits += 1
                    latency = self._l1_latency
                    stats = self._stats
                    stats.l1_hits += 1
                    stats.total_latency += latency
                    stats.per_core_accesses[self.core_id] += 1
                else:
                    latency = self._access(
                        self.core_id, 0, self._pending_addr, self.time
                    )
            else:
                latency = self._access(
                    self.core_id, op, self._pending_addr, self.time
                )
            self.time += latency
            self.instructions += 1
            self.memory_ops += 1
            self._last_latency = latency
        if self.instructions >= budget:
            self._pending_op = None
            self.finished = True
            return False
        if self._batches is not None:
            # Inlined ``_advance_batched`` (scheduler-only fast path —
            # the method form remains for direct callers).
            pos = self._chunk_pos
            if pos >= self._chunk_len:
                try:
                    chunk = next(self._batches)
                except StopIteration:
                    self._pending_op = None
                    self.finished = True
                    return False
                self._chunk = chunk
                self._chunk_len = len(chunk)
                pos = 0
            compute, op, addr = self._chunk[pos]
            self._chunk_pos = pos + 1
            self.time += compute
            self.instructions += compute
            if op is None:
                self._pending_op = None
                self._last_latency = 0
            else:
                self._pending_op = op
                self._pending_addr = addr
            return True
        # Inlined ``advance`` (same semantics; scheduler-only fast
        # path — the method form remains for direct callers).  The
        # scheduler only steps cores whose initial ``advance``
        # succeeded, so the generator is always primed here.
        try:
            item = self._send(self._last_latency)
        except StopIteration:
            self._pending_op = None
            self.finished = True
            return False
        compute, op, addr = item
        if compute < 0:
            raise ValueError("compute instruction count must be >= 0")
        self.time += compute
        self.instructions += compute
        if op is None:
            self._pending_op = None
            self._last_latency = 0
        else:
            self._pending_op = op
            self._pending_addr = addr
        return True

    def __repr__(self) -> str:
        return (
            f"Core({self.core_id}, t={self.time}, "
            f"insns={self.instructions}, "
            f"{'finished' if self.finished else 'running'})"
        )
