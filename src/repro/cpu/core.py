"""In-order blocking core model.

A core executes a *workload generator*: a Python generator yielding
``(compute_instructions, op, byte_address)`` records and receiving the
latency of its previous memory operation via ``send`` (attack code uses
that feedback to time its probes, exactly like ``rdtsc`` around a load).

Timing model: non-memory instructions retire at CPI = 1; a memory
operation blocks the core for the hierarchy-reported latency.  ``op``
may be ``None`` for a pure-compute record.

The core advances in two phases so the multicore scheduler can
interleave shared-state mutations in global time order:

* :meth:`advance`  — consume the next record and add its compute time;
  after it returns, ``time`` is the cycle at which the pending memory
  operation will reach the hierarchy.
* :meth:`execute_pending` — perform that operation and add its latency.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.workloads.base import WorkloadGenerator


class Core:
    """One hardware thread bound to a private L1/L2 stack."""

    __slots__ = (
        "core_id",
        "workload",
        "hierarchy",
        "time",
        "instructions",
        "memory_ops",
        "finished",
        "_pending_op",
        "_pending_addr",
        "_last_latency",
        "_primed",
        "_send",
        "_access",
    )

    def __init__(
        self,
        core_id: int,
        workload: WorkloadGenerator,
        hierarchy: CacheHierarchy,
    ):
        self.core_id = core_id
        self.workload = workload
        self.hierarchy = hierarchy
        self.time = 0
        self.instructions = 0
        self.memory_ops = 0
        self.finished = False
        # Pending memory op as two plain slots (op None = no op):
        # packing/unpacking a tuple per record is measurable in the
        # scheduler loop.
        self._pending_op: int | None = None
        self._pending_addr = 0
        self._last_latency = 0
        self._primed = False
        # Bound-method caches for the two calls made per scheduler
        # step; the advance/execute loop dominates simulation time.
        self._send = workload.send
        self._access = hierarchy.access

    def advance(self) -> bool:
        """Consume the next workload record (compute phase).

        Returns False when the workload generator is exhausted, in
        which case the core is marked finished.
        """
        if self.finished:
            return False
        try:
            if self._primed:
                item = self._send(self._last_latency)
            else:
                item = next(self.workload)
                self._primed = True
        except StopIteration:
            self.finished = True
            return False
        compute, op, addr = item
        if compute < 0:
            raise ValueError("compute instruction count must be >= 0")
        self.time += compute
        self.instructions += compute
        if op is None:
            self._pending_op = None
            self._last_latency = 0
        else:
            self._pending_op = op
            self._pending_addr = addr
        return True

    def execute_pending(self) -> None:
        """Perform the memory operation scheduled by :meth:`advance`."""
        op = self._pending_op
        if op is None:
            return
        latency = self._access(self.core_id, op, self._pending_addr, self.time)
        self.time += latency
        self.instructions += 1
        self.memory_ops += 1
        self._last_latency = latency
        self._pending_op = None

    def step(self, budget: int | float) -> bool:
        """Execute the pending operation, then advance one record.

        The scheduler's per-operation unit of work as a single call
        (``execute_pending`` + budget check + ``advance``), saving two
        method dispatches per memory operation.  ``budget`` is the
        per-core instruction budget (``float('inf')`` for unbounded).
        Returns False — with the core marked finished — when the
        budget is exhausted or the workload ends.
        """
        op = self._pending_op
        if op is not None:
            latency = self._access(self.core_id, op, self._pending_addr, self.time)
            self.time += latency
            self.instructions += 1
            self.memory_ops += 1
            self._last_latency = latency
        if self.instructions >= budget:
            self._pending_op = None
            self.finished = True
            return False
        # Inlined ``advance`` (same semantics; scheduler-only fast
        # path — the method form remains for direct callers).  The
        # scheduler only steps cores whose initial ``advance``
        # succeeded, so the generator is always primed here.
        try:
            item = self._send(self._last_latency)
        except StopIteration:
            self._pending_op = None
            self.finished = True
            return False
        compute, op, addr = item
        if compute < 0:
            raise ValueError("compute instruction count must be >= 0")
        self.time += compute
        self.instructions += compute
        if op is None:
            self._pending_op = None
            self._last_latency = 0
        else:
            self._pending_op = op
            self._pending_addr = addr
        return True

    def __repr__(self) -> str:
        return (
            f"Core({self.core_id}, t={self.time}, "
            f"insns={self.instructions}, "
            f"{'finished' if self.finished else 'running'})"
        )
