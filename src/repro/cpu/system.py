"""Full-system assembly: config + workloads → runnable multicore system.

``run_workloads`` is the one-call entry point the performance
experiments (Fig. 8, secThr sensitivity) are built on: it constructs the
Table II hierarchy, optionally deploys PiPoMonitor, binds one workload
per core, and runs to an instruction budget.

Cores whose workload declares ``batchable`` (synthetic/SPEC streams,
packable traces — anything that ignores latency feedback) are bound
through the chunked batch prefetch (:class:`repro.cpu.core.Core`'s
``batches`` mode) instead of a per-record generator.  The record
streams are identical either way, so results are bit-identical —
``REPRO_BATCH=0`` (or ``batch=False``) forces the generator path,
which the golden-equivalence tests compare against.

Engine binding happens here implicitly: both assembly helpers attach
the monitor *before* constructing cores, and each core resolves its
access entry point through ``hierarchy.engine_access()`` at
construction — so under ``REPRO_ENGINE=specialized``/``c`` the
generated kernel is compiled once per system, outside the simulated
region, with the final monitor configuration baked in.  Results are
bit-identical across engines (the conformance harness replays the
full scenario matrix under each).
"""

from __future__ import annotations

import os

from repro.baselines.registry import build_defence
from repro.core.config import SystemConfig
from repro.engine import engine_provenance
from repro.core.pipomonitor import PiPoMonitor
from repro.cpu.core import Core
from repro.cpu.multicore import MulticoreSystem, SimulationResult
from repro.obs.trace import span as _span
from repro.utils.events import EventQueue
from repro.utils.rng import derive_seed
from repro.workloads.base import ScriptedWorkload, Workload


def batch_enabled(batch: bool | None = None) -> bool:
    """Resolve the batch-prefetch flag: explicit argument beats the
    ``REPRO_BATCH`` environment toggle (default on)."""
    if batch is not None:
        return batch
    return os.environ.get("REPRO_BATCH", "") != "0"


def build_system(
    config: SystemConfig,
    workloads: list[Workload],
    seed: int = 0,
    track_captured_lines: bool = False,
    batch: bool | None = None,
) -> tuple[MulticoreSystem, PiPoMonitor | None]:
    """Construct the system a config describes.

    One workload per core is required.  Returns the system and the
    deployed monitor (None when ``config.monitor_enabled`` is False —
    the paper's baseline).
    """
    if len(workloads) != config.num_cores:
        raise ValueError(
            f"need exactly {config.num_cores} workloads, "
            f"got {len(workloads)}"
        )
    events = EventQueue()
    hierarchy = config.build_hierarchy(seed=seed)
    monitor = None
    if config.monitor_enabled:
        fltr = config.filter.build(seed=derive_seed(seed, "filter"))
        monitor = PiPoMonitor(
            fltr,
            events,
            prefetch_delay=config.prefetch_delay,
            track_captured_lines=track_captured_lines,
        )
        monitor.attach(hierarchy)
    use_batches = batch_enabled(batch)
    cores = []
    for core_id, workload in enumerate(workloads):
        workload_seed = derive_seed(seed, "workload", core_id)
        if use_batches and workload.batchable:
            cores.append(
                Core(
                    core_id,
                    None,
                    hierarchy,
                    batches=workload.record_chunks(core_id, workload_seed),
                )
            )
        else:
            cores.append(
                Core(
                    core_id,
                    workload.generator(core_id, workload_seed),
                    hierarchy,
                )
            )
    return MulticoreSystem(hierarchy, cores, events), monitor


def run_workloads(
    config: SystemConfig,
    workloads: list[Workload],
    instructions_per_core: int,
    seed: int = 0,
    batch: bool | None = None,
) -> SimulationResult:
    """Build and run in one call; returns the simulation result."""
    with _span("assemble", "engine", seed=seed):
        system, monitor = build_system(config, workloads, seed=seed, batch=batch)
    with _span("simulate", "engine", seed=seed):
        result = system.run(max_instructions_per_core=instructions_per_core)
    if monitor is not None:
        result.extra["filter_occupancy"] = monitor.filter.occupancy()
        result.extra["prefetch_delay"] = monitor.prefetch_delay
    result.extra["engine"] = engine_provenance()
    return result


def run_defended_workloads(
    config: SystemConfig,
    workloads: list[Workload],
    defence: str,
    seed: int = 0,
    seed_label: str = "workload",
    instructions_per_core: int | None = None,
    pad_idle: bool = False,
    detection=None,
):
    """Assemble and run a system with a registry defence attached.

    The generalisation of :func:`run_workloads` the attack scenarios
    and the conformance harness share: ``defence`` is any name from
    :data:`repro.baselines.registry.DEFENCES` (so BITP and the table
    recorder plug in where ``config.monitor_enabled`` only covers
    PiPoMonitor), ``pad_idle`` fills the remaining cores with idle
    workloads, and ``seed_label`` is the per-core seed-derivation
    namespace (kept caller-chosen so existing streams stay
    bit-identical).  Cores consume generators directly — timing-
    sensitive attackers cannot batch, and the fixed generator path
    keeps conformance fixtures independent of ``REPRO_BATCH``.

    ``detection`` (a :class:`repro.detection.DetectionSpec`) deploys
    the online detection-and-response subsystem: the defence's alarm
    bus is attached *before* core construction — each core resolves
    its access kernel at construction, so the specialized engines bake
    the publish sites in — and the built unit's report lands in
    ``result.extra["detection"]``.

    Returns ``(simulation_result, monitor, hierarchy)``.
    """
    workloads = list(workloads)
    if pad_idle:
        while len(workloads) < config.num_cores:
            workloads.append(ScriptedWorkload([(0, None, 0)], name="idle"))
    if len(workloads) != config.num_cores:
        raise ValueError(
            f"need exactly {config.num_cores} workloads, "
            f"got {len(workloads)}"
        )
    # Engine-phase spans: assembly (hierarchy build + kernel
    # compilation at core construction) vs. the simulated run.  The
    # span() helper is a shared no-op unless a recorder is attached —
    # one global load per call, twice per simulation, never per event.
    with _span("assemble", "engine", defence=defence, seed=seed):
        events = EventQueue()
        hierarchy = config.build_hierarchy(seed=seed)
        monitor = build_defence(defence, config, events, seed=seed)
        if monitor is not None:
            monitor.attach(hierarchy)
        bus = None
        if detection is not None:
            if monitor is None:
                raise ValueError(
                    "detection requires a defence that publishes alarms "
                    "(defence='none' has no monitor on the hierarchy)"
                )
            bus = detection.attach_bus(monitor)
        cores = [
            Core(core_id, wl.generator(core_id, derive_seed(seed, seed_label, core_id)),
                 hierarchy)
            for core_id, wl in enumerate(workloads)
        ]
        unit = None
        if detection is not None:
            unit = detection.deploy(bus, events, hierarchy, cores)
    with _span("simulate", "engine", defence=defence, seed=seed):
        result = MulticoreSystem(hierarchy, cores, events, detection=unit).run(
            max_instructions_per_core=instructions_per_core
        )
    # Engine provenance rides on every assembled run so fleet-level
    # aggregation can prove it never mixed engines (or see exactly
    # where a toolchain-less worker degraded c -> specialized).
    # Conformance digests scrub this key — provenance, not semantics.
    result.extra["engine"] = engine_provenance()
    return result, monitor, hierarchy
