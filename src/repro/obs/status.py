"""Offline checkpoint-directory inspection: ``repro-experiment status``.

A long fan-out (a ``REPRO_FULL`` grid, a streaming campaign) leaves a
live audit trail in its checkpoint directory: one manifest per grid
(or per campaign chunk) naming the label, engine, and cell count, and
one JSONL shard accumulating a line per completed cell.  This module
reads that trail *without* touching it — manifests are parsed, shard
lines are counted (decodable lines only, matching the loader's
replay rule), and nothing is ever written — so ``status`` is safe to
run against the checkpoint directory of a run that is still in
flight, from a different terminal, at any moment.

The report is per-shard completion plus a directory-level rollup:
total cells, done cells, undecodable (in-flight or truncated) lines,
and the age of the most recent shard append — the "is it still
making progress?" question answered from disk alone.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

MANIFEST_SUFFIX = ".manifest.json"


@dataclass
class ShardStatus:
    """Completion state of one grid/chunk shard."""

    stem: str
    label: str
    engine: str
    cells: int
    done: int
    partial_lines: int      # undecodable lines (at most a truncated tail)
    mtime: float | None     # last shard append, None when no shard yet

    @property
    def complete(self) -> bool:
        return self.done >= self.cells

    @property
    def percent(self) -> float:
        return 100.0 * self.done / self.cells if self.cells else 100.0


def _count_shard_lines(path: Path) -> tuple[int, int]:
    """(decodable, undecodable) line counts for one shard.

    Counting mirrors ``GridCheckpoint._load``'s replay rule — a line
    counts as done when it parses as JSON with an integer ``"i"`` —
    minus the unpickling, so status never imports experiment code and
    never executes payload bytes.
    """
    done = partial = 0
    try:
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    partial += 1
                    continue
                if isinstance(record, dict) and isinstance(record.get("i"), int):
                    done += 1
                else:
                    partial += 1
    except OSError:
        return 0, 0
    return done, partial


def checkpoint_status(directory: str | Path) -> list[ShardStatus]:
    """Read every manifest (+ shard) in ``directory``; sorted by stem.

    A manifest without a shard reports 0 done (the grid checkpointed
    nothing yet); a shard without a manifest is skipped — the running
    process reconciles orphans itself, and status guessing at labels
    would just be noise.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"no checkpoint directory at {directory} (pass the same "
            "--checkpoint-dir the run uses)"
        )
    rows: list[ShardStatus] = []
    for manifest_path in sorted(directory.glob(f"*{MANIFEST_SUFFIX}")):
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(manifest, dict):
            continue
        stem = manifest_path.name[: -len(MANIFEST_SUFFIX)]
        shard = directory / f"{stem}.jsonl"
        done, partial = _count_shard_lines(shard)
        try:
            mtime = shard.stat().st_mtime
        except OSError:
            mtime = None
        rows.append(ShardStatus(
            stem=stem,
            label=str(manifest.get("label", "?")),
            engine=str(manifest.get("engine", "?")),
            cells=int(manifest.get("cells", 0)),
            done=done,
            partial_lines=partial,
            mtime=mtime,
        ))
    return rows


def render_status(rows: list[ShardStatus], now: float | None = None) -> str:
    """Human-readable status report (pure string; caller prints)."""
    if not rows:
        return "no checkpoint manifests found"
    if now is None:
        now = time.time()
    width = max(len(r.stem) for r in rows)
    lines = [
        f"{'shard'.ljust(width)}  {'engine':>11}  {'done':>13}  {'%':>5}"
    ]
    total_cells = total_done = total_partial = 0
    newest: float | None = None
    for row in rows:
        total_cells += row.cells
        total_done += row.done
        total_partial += row.partial_lines
        if row.mtime is not None:
            newest = row.mtime if newest is None else max(newest, row.mtime)
        lines.append(
            f"{row.stem.ljust(width)}  {row.engine:>11}  "
            f"{row.done:>6}/{row.cells:<6}  {row.percent:>4.0f}%"
        )
    pct = 100.0 * total_done / total_cells if total_cells else 100.0
    summary = (
        f"total: {total_done}/{total_cells} cells ({pct:.0f}%) "
        f"across {len(rows)} shard(s)"
    )
    if total_partial:
        summary += f", {total_partial} in-flight/truncated line(s)"
    if newest is not None:
        summary += f"; last append {max(now - newest, 0.0):.0f}s ago"
    lines.append(summary)
    return "\n".join(lines)
