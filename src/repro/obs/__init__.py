"""Zero-overhead observability: telemetry, trace spans, live progress.

The package follows the AlarmBus discipline (PERFORMANCE.md design
rules 15 and 18): every instrument is opt-in, resolved at *build /
install time*, and compiles to nothing when detached.  A simulation
with no telemetry sink attached generates byte-identical kernel
source to a tree without this package, and a traced run produces
bit-identical result digests to an untraced one — observability reads
the run, it never participates in it.

Modules:

``telemetry``
    A registry of counters / gauges / streaming statistics
    (:class:`~repro.utils.stats.RunningStat`) and quantile sketches
    (:class:`~repro.utils.stats.QuantileSketch`).  Engine kernels bake
    publish sites in only when a sink is attached; the C engine
    exports aggregate counter deltas in one boundary crossing per
    batch (rules 16/17).

``trace``
    Wall-clock spans across the execution stack (grid → chunk → cell
    → attempt → engine phase), serialized as Chrome-trace / Perfetto
    JSON.  Workers stream span records back over the existing result
    pipes, CRC-checked like payloads.

``progress``
    A throttled, single-line live progress renderer fed by the worker
    supervisor and the streaming campaign runner.

``status``
    Offline inspection of a (possibly mid-run) checkpoint directory —
    the ``repro-experiment status`` subcommand.
"""

from repro.obs.telemetry import (  # noqa: F401
    Telemetry,
    attach_telemetry,
    current_telemetry,
    detach_telemetry,
    telemetry_attached,
)
from repro.obs.trace import (  # noqa: F401
    TraceRecorder,
    attach_recorder,
    current_recorder,
    detach_recorder,
    span,
)
