"""Structured run telemetry: counters, gauges, streaming statistics.

A :class:`Telemetry` instance is a passive registry.  Nothing in the
simulator publishes to it unless it is *attached* as the process-wide
sink (:func:`attach_telemetry`), and — following the AlarmBus pattern
of PERFORMANCE.md design rule 15 — hot-path publish sites are resolved
when kernels are **built**, not when they run:

* the specializing engine bakes counter-increment statements into the
  generated source only when a sink is attached at build time (the
  sink's identity joins the kernel cache key, so attach/detach can
  never alias a cached kernel built under the other regime);
* the C engine never calls back per event — install-time wrappers
  export aggregate counter deltas (probes, kick-walk relocations,
  fills, evictions) in one boundary crossing per batch (rules 16/17);
* everything else (experiment harness, worker supervisor, campaign
  runner) checks :func:`current_telemetry` at call sites that run at
  most once per cell or chunk.

With no sink attached every one of those paths compiles or branches
to the exact pre-observability behaviour: byte-identical kernel
source, zero extra instructions on the hot path.

Telemetry is wall-clock-free and deterministic per cell: the same
simulation publishes the same counts whether it runs serially or in a
fork worker, which is what lets the supervisor *merge* worker-side
snapshots (:meth:`Telemetry.merge_state`) into a fleet-wide view
without perturbing any result digest.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.utils.stats import QuantileSketch, RunningStat

#: Default geometry for duration-like sketches (microseconds up to
#: ~17 minutes); chosen once so worker-side sketches always merge.
SKETCH_LO = 1.0
SKETCH_HI = 1e9
SKETCH_BINS = 384


class Telemetry:
    """Registry of named counters, gauges, and streaming statistics.

    Counters are monotonically increasing ints; gauges are
    last-write-wins floats; ``stats`` are Welford accumulators
    (:class:`RunningStat`); ``sketches`` are fixed-geometry
    :class:`QuantileSketch` log-histograms.  Kernel-published counters
    live in *hot blocks* — plain lists handed to generated kernels so
    an increment is a single indexed ``+= 1`` with no dict lookup or
    attribute chase — and are folded into the named counters whenever
    a snapshot is taken.
    """

    __slots__ = ("counters", "gauges", "stats", "sketches", "_blocks")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.stats: dict[str, RunningStat] = {}
        self.sketches: dict[str, QuantileSketch] = {}
        self._blocks: list[tuple[tuple[str, ...], list[int]]] = []

    # -- publishing ----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the :class:`RunningStat` named ``name``."""
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = RunningStat()
        stat.add(value)

    def observe_quantile(self, name: str, value: float) -> None:
        """Fold ``value`` into the sketch named ``name`` (shared
        default geometry so snapshots from any process merge)."""
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch(
                lo=SKETCH_LO, hi=SKETCH_HI, bins=SKETCH_BINS
            )
        sketch.add(value)

    def kernel_counters(self, names: tuple[str, ...]) -> list[int]:
        """Return a hot block — a list of zeros, one slot per name.

        Generated kernels bind the list and bump slots by index; the
        registry folds the slots into the named counters at snapshot
        time.  Each call returns a fresh block (one per built kernel),
        so concurrent kernels never contend on a shared slot.
        """
        block = [0] * len(names)
        self._blocks.append((tuple(names), block))
        return block

    # -- snapshots -----------------------------------------------------

    def _fold_blocks(self) -> None:
        """Drain every hot block into the named counters."""
        for names, block in self._blocks:
            for i, name in enumerate(names):
                if block[i]:
                    self.counters[name] = self.counters.get(name, 0) + block[i]
                    block[i] = 0

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never published)."""
        self._fold_blocks()
        return self.counters.get(name, 0)

    def state(self) -> dict:
        """Canonical (JSON-safe, key-sorted) snapshot of everything.

        Deterministic for a deterministic run: no timestamps, no ids,
        no provenance — safe to diff across engines and across
        serial/parallel executions of the same cells.
        """
        self._fold_blocks()
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "stats": {k: self.stats[k].state() for k in sorted(self.stats)},
            "sketches": {
                k: self.sketches[k].state() for k in sorted(self.sketches)
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`state` snapshot (e.g. shipped back from a
        fork worker) into this registry.  Counters and distributions
        add; gauges are last-write-wins."""
        self._fold_blocks()
        for name, n in state.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.gauges.update(state.get("gauges", {}))
        for name, sub in state.get("stats", {}).items():
            stat = self.stats.get(name)
            if stat is None:
                self.stats[name] = RunningStat.from_state(sub)
            else:
                stat.merge(RunningStat.from_state(sub))
        for name, sub in state.get("sketches", {}).items():
            sketch = self.sketches.get(name)
            if sketch is None:
                self.sketches[name] = QuantileSketch.from_state(sub)
            else:
                sketch.merge(QuantileSketch.from_state(sub))

    def summary_lines(self) -> list[str]:
        """Human-readable one-line-per-instrument rendering."""
        self._fold_blocks()
        lines = [
            f"  {name} = {self.counters[name]:,}"
            for name in sorted(self.counters)
        ]
        lines += [
            f"  {name} = {self.gauges[name]:g}"
            for name in sorted(self.gauges)
        ]
        for name in sorted(self.stats):
            stat = self.stats[name]
            lines.append(
                f"  {name}: n={stat.count} mean={stat.mean:.4g} "
                f"min={stat.minimum:.4g} max={stat.maximum:.4g}"
            )
        for name in sorted(self.sketches):
            sketch = self.sketches[name]
            p50 = sketch.quantile(0.5)
            p99 = sketch.quantile(0.99)
            lines.append(
                f"  {name}: n={sketch.count} "
                f"p50={p50 if p50 is None else format(p50, '.4g')} "
                f"p99={p99 if p99 is None else format(p99, '.4g')}"
            )
        return lines


# ----------------------------------------------------------------------
# Process-wide sink (the AlarmBus-style attach point)
# ----------------------------------------------------------------------

_current: Telemetry | None = None


def attach_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the process-wide sink and return it.

    Kernels built *after* this point bake publish sites in; kernels
    built before it stay silent (and stay cached — the sink identity
    is part of the kernel cache key, so both versions coexist).
    """
    global _current
    _current = telemetry
    return telemetry


def detach_telemetry() -> Telemetry | None:
    """Remove the process-wide sink (kernels built afterwards are
    byte-identical to a tree without the obs package)."""
    global _current
    previous, _current = _current, None
    return previous


def current_telemetry() -> Telemetry | None:
    """The attached sink, or None.  Publish sites resolved at build /
    install time capture this once; per-cell sites call it directly."""
    return _current


def telemetry_attached() -> bool:
    return _current is not None


@contextmanager
def attached(telemetry: Telemetry):
    """Attach ``telemetry`` for the duration of a ``with`` block,
    restoring whatever sink (or absence) preceded it."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous


#: Env flag telling fork workers to collect per-cell telemetry and
#: ship snapshots back over the result pipe.  Named ``REPRO_*`` so the
#: supervisor's pinned-environment contract propagates it verbatim.
TELEMETRY_ENV = "REPRO_TELEMETRY"


def env_enabled() -> bool:
    """Whether the worker-side collection flag is set."""
    return os.environ.get(TELEMETRY_ENV, "") not in ("", "0")
