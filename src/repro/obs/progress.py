"""Live single-line progress for grids and streaming campaigns.

A :class:`Progress` instance owns one carriage-return-rewritten line
on a terminal stream.  It is fed by the worker supervisor (per-cell
completions, retries, worker heartbeats) and the streaming campaign
runner (per-chunk totals, checkpoint loads, orphan shards), and
renders throughput, ETA, and the fault-path counters that PR 6/8 made
first-class: retries, engine fallbacks, failures, orphaned shards.

Like every obs instrument it is opt-in: nothing renders unless the
CLI attaches an instance (:func:`attach_progress`), so tests and
piped runs stay byte-clean on stderr.  Rendering is throttled to
``interval`` seconds and the supervisor's existing ≤0.5 s poll tick
drives re-renders between completions, which is what keeps the ETA
moving while a long cell runs.

Progress is presentation only — it reads counts the harness already
maintains and never feeds anything back into results or digests.
"""

from __future__ import annotations

import sys
import time


class Progress:
    """Throttled one-line progress renderer.

    ``total`` may be unknown (None): the line then shows a running
    count without percentage or ETA.  ``stream=None`` disables
    rendering entirely while still accumulating counts, which lets
    tests assert on :meth:`line` without terminal side effects.
    """

    def __init__(
        self,
        label: str = "",
        total: int | None = None,
        unit: str = "cells",
        stream=None,
        interval: float = 0.5,
    ) -> None:
        self.label = label
        self.total = total
        self.unit = unit
        self.stream = stream
        self.interval = interval
        self.done = 0
        self.loaded = 0        # satisfied from checkpoint shards
        self.retries = 0
        self.failures = 0
        self.fallbacks = 0
        self.orphans = 0
        self.busy = 0          # workers currently holding a cell
        self.workers = 0       # pool size (0 == serial)
        self._start = time.perf_counter()
        self._last_render = 0.0
        self._last_width = 0

    # -- feeding -------------------------------------------------------

    def set_total(self, total: int | None) -> None:
        self.total = total

    def add_total(self, n: int) -> None:
        """Grow the known total (streaming runners learn it chunk by
        chunk)."""
        self.total = (self.total or 0) + n

    def advance(self, n: int = 1, loaded: bool = False) -> None:
        """Record ``n`` completed units; render if due."""
        self.done += n
        if loaded:
            self.loaded += n
        self.maybe_render()

    def note_retry(self, n: int = 1) -> None:
        self.retries += n
        self.maybe_render()

    def note_failure(self, n: int = 1) -> None:
        self.failures += n
        self.maybe_render()

    def note_fallback(self, n: int = 1) -> None:
        self.fallbacks += n

    def note_orphans(self, n: int = 1) -> None:
        self.orphans += n

    def heartbeat(self, busy: int, workers: int) -> None:
        """Supervisor tick: how many workers hold a cell right now."""
        self.busy = busy
        self.workers = workers
        self.maybe_render()

    # -- rendering -----------------------------------------------------

    def line(self) -> str:
        """The current progress line (pure; no terminal I/O)."""
        elapsed = max(time.perf_counter() - self._start, 1e-9)
        rate = self.done / elapsed
        head = f"{self.label}: " if self.label else ""
        if self.total:
            pct = 100.0 * self.done / self.total
            body = f"{self.done}/{self.total} {self.unit} ({pct:.0f}%)"
            if rate > 0 and self.done < self.total:
                eta = (self.total - self.done) / rate
                body += f"  {rate:.1f}/s  eta {_fmt_eta(eta)}"
            else:
                body += f"  {rate:.1f}/s"
        else:
            body = f"{self.done} {self.unit}  {rate:.1f}/s"
        if self.workers:
            body += f"  [workers {self.busy}/{self.workers}]"
        for name, value in (
            ("loaded", self.loaded),
            ("retries", self.retries),
            ("fallbacks", self.fallbacks),
            ("failures", self.failures),
            ("orphan-shards", self.orphans),
        ):
            if value:
                body += f"  {name} {value}"
        return head + body

    def maybe_render(self) -> None:
        """Rewrite the line if the throttle interval has elapsed."""
        if self.stream is None:
            return
        now = time.perf_counter()
        if now - self._last_render < self.interval:
            return
        self._render(now)

    def _render(self, now: float) -> None:
        text = self.line()
        pad = " " * max(self._last_width - len(text), 0)
        try:
            self.stream.write("\r" + text + pad)
            self.stream.flush()
        except (OSError, ValueError):
            self.stream = None  # stream went away; stop rendering
            return
        self._last_width = len(text)
        self._last_render = now

    def finish(self) -> None:
        """Force a final render and move off the line."""
        if self.stream is None:
            return
        self._render(time.perf_counter())
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass


def _fmt_eta(seconds: float) -> str:
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{(seconds % 3600) // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


# ----------------------------------------------------------------------
# Process-wide progress line (the CLI attaches; the harness feeds)
# ----------------------------------------------------------------------

_progress: Progress | None = None


def attach_progress(progress: Progress) -> Progress:
    global _progress
    _progress = progress
    return progress


def detach_progress() -> Progress | None:
    global _progress
    previous, _progress = _progress, None
    return previous


def current_progress() -> Progress | None:
    return _progress


def auto_stream():
    """The stream a CLI-attached progress line should render to: the
    real stderr when it is a terminal, else None (no rendering)."""
    stream = sys.stderr
    try:
        if stream.isatty():
            return stream
    except (AttributeError, ValueError):
        pass
    return None
