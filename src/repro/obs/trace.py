"""Wall-clock trace spans, serialized as Chrome-trace / Perfetto JSON.

A :class:`TraceRecorder` collects *complete events* (``"ph": "X"`` in
the Chrome trace format): one record per span with a start timestamp
in microseconds and a duration.  Spans nest naturally — grid → chunk
→ cell → attempt → engine phase — because Perfetto reconstructs the
stack from containment on the same ``(pid, tid)`` track.

Recording is opt-in twice over:

* in-process sites call :func:`span`, which returns a shared no-op
  context manager unless a recorder is attached — one global load and
  an ``is None`` test, at grid/chunk/cell granularity only (never per
  simulated event);
* fork workers check the ``REPRO_TRACE`` environment flag (pinned to
  them by the supervisor's existing ``REPRO_*`` propagation), collect
  their spans locally, and ship them back over the result pipe as a
  CRC-checked sidecar next to the payload — a corrupt span blob drops
  the spans and bumps a counter, it never fails the cell.

Timestamps are wall-clock (``time.time``) so spans from different
processes land on one coherent timeline; durations use the monotonic
``perf_counter``.  None of this ever enters a result payload, a
checkpoint shard, or a digest: tracing a run cannot change its
output.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager, nullcontext

#: Env flag telling fork workers to collect spans for each cell and
#: ship them back.  ``REPRO_*`` so the pinned-environment contract
#: propagates it to respawned workers too.
TRACE_ENV = "REPRO_TRACE"


def env_enabled() -> bool:
    """Whether the worker-side span-collection flag is set."""
    return os.environ.get(TRACE_ENV, "") not in ("", "0")


class TraceRecorder:
    """Accumulates Chrome-trace events; cheap enough to live in a
    fork worker for the duration of one cell."""

    __slots__ = ("events", "dropped")

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.dropped = 0

    def add(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        *,
        pid: int | None = None,
        tid: int = 1,
        args: dict | None = None,
    ) -> None:
        """Record one complete event (timestamps in microseconds)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": os.getpid() if pid is None else pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def extend(self, events: list[dict]) -> None:
        """Append raw events (e.g. shipped back from a worker)."""
        self.events.extend(events)

    def process_name(self, name: str, pid: int | None = None) -> None:
        """Emit the metadata event that labels a process track."""
        self.events.append({
            "name": "process_name",
            "ph": "M",
            "pid": os.getpid() if pid is None else pid,
            "tid": 1,
            "args": {"name": name},
        })

    @contextmanager
    def span(self, name: str, cat: str = "run", **args):
        """Record the enclosed block as one complete event."""
        ts = time.time() * 1e6
        start = time.perf_counter()
        try:
            yield
        finally:
            dur = (time.perf_counter() - start) * 1e6
            self.add(name, cat, ts, dur, args=args or None)

    def chrome_trace(self, telemetry: dict | None = None) -> dict:
        """The JSON-object trace container Perfetto and chrome://tracing
        load directly.  ``telemetry`` (a Telemetry.state() snapshot)
        rides along as an extra top-level key, which the format
        explicitly permits."""
        trace: dict = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"droppedSidecars": self.dropped},
        }
        if telemetry is not None:
            trace["telemetry"] = telemetry
        return trace

    def write(self, path: str, telemetry: dict | None = None) -> None:
        """Serialize the trace to ``path`` as Chrome-trace JSON."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(telemetry), fh)
            fh.write("\n")


def validate_chrome_trace(trace: object) -> list[str]:
    """Structural validation against the Chrome-trace JSON schema.

    Returns a list of problems (empty == valid).  Used by the CI
    telemetry smoke step and the obs tests; deliberately strict about
    the fields Perfetto needs (``name``/``ph``/``ts``/``pid``/``tid``,
    a non-negative ``dur`` on complete events) and silent about
    optional extras.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace container must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace container has no traceEvents list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event {i}: missing phase ('ph')")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {i}: missing integer pid")
        if not isinstance(event.get("tid"), int):
            problems.append(f"event {i}: missing integer tid")
        if ph == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {i}: missing timestamp ('ts')")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: complete event without dur >= 0")
    return problems


# ----------------------------------------------------------------------
# Process-wide recorder (mirrors telemetry's attach point)
# ----------------------------------------------------------------------

_recorder: TraceRecorder | None = None
_NOOP = nullcontext()


def attach_recorder(recorder: TraceRecorder) -> TraceRecorder:
    """Install ``recorder`` as the process-wide span sink."""
    global _recorder
    _recorder = recorder
    return recorder


def detach_recorder() -> TraceRecorder | None:
    """Remove the process-wide span sink."""
    global _recorder
    previous, _recorder = _recorder, None
    return previous


def current_recorder() -> TraceRecorder | None:
    return _recorder


def span(name: str, cat: str = "run", **args):
    """Span the enclosed block on the attached recorder, or do
    nothing (a shared, reentrant null context) when none is attached.
    The detached cost is one global load and an ``is None`` test."""
    recorder = _recorder
    if recorder is None:
        return _NOOP
    return recorder.span(name, cat, **args)


@contextmanager
def recording(recorder: TraceRecorder):
    """Attach ``recorder`` for the duration of a ``with`` block,
    restoring the previous sink afterwards."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    try:
        yield recorder
    finally:
        _recorder = previous
