"""DRAM timing model.

Table II specifies a flat "200-cycle latency" DRAM, which is the
default here.  An optional open-page (row-buffer) mode is provided for
sensitivity studies: consecutive accesses to the same DRAM row within a
bank complete faster, misses pay a precharge penalty on top.
"""

from __future__ import annotations

from repro.utils.bitops import is_power_of_two

DEFAULT_DRAM_LATENCY = 200


class DramModel:
    """Per-access DRAM latency.

    Parameters
    ----------
    latency:
        Baseline access latency in core cycles (Table II: 200).
    open_page:
        Enable the row-buffer model.  Off by default to match the
        paper's flat-latency configuration.
    num_banks / row_bytes:
        Row-buffer geometry when ``open_page`` is enabled.
    """

    def __init__(
        self,
        latency: int = DEFAULT_DRAM_LATENCY,
        open_page: bool = False,
        num_banks: int = 8,
        row_bytes: int = 8192,
        row_hit_fraction: float = 0.6,
        row_miss_penalty_fraction: float = 0.25,
    ):
        if latency <= 0:
            raise ValueError("latency must be positive")
        if not is_power_of_two(num_banks):
            raise ValueError("num_banks must be a power of two")
        if not is_power_of_two(row_bytes):
            raise ValueError("row_bytes must be a power of two")
        self.latency = latency
        self.open_page = open_page
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self._row_hit_latency = max(1, int(latency * row_hit_fraction))
        self._row_miss_latency = latency + int(latency * row_miss_penalty_fraction)
        self._open_rows: list[int | None] = [None] * num_banks
        self.row_hits = 0
        self.row_misses = 0

    def access_latency(self, byte_address: int) -> int:
        """Latency of one line fetch at ``byte_address``."""
        if not self.open_page:
            return self.latency
        row = byte_address // self.row_bytes
        bank = row & (self.num_banks - 1)
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return self._row_hit_latency
        self._open_rows[bank] = row
        self.row_misses += 1
        return self._row_miss_latency

    def __repr__(self) -> str:
        mode = "open-page" if self.open_page else "flat"
        return f"DramModel({self.latency} cycles, {mode})"
