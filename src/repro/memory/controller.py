"""On-chip memory controller.

Models the structures of Fig. 2 that matter to PiPoMonitor:

* the **memory fetch queue**, abstracted as a single channel that
  serialises transfers — each fetch/writeback occupies the channel for
  a burst; a request issued while the channel is busy queues (the wait
  is added to its latency).  This is what makes the paper's prefetch
  *delay* meaningful: an immediate prefetch would contend with the
  writeback of the same evicted line.
* the **DRAM access** itself, delegated to :class:`DramModel`.

The controller is shared by demand fetches, writebacks, and
PiPoMonitor prefetches, and it keeps the traffic counters the
experiments report.
"""

from __future__ import annotations

from repro.memory.dram import DramModel

#: Cycles one 64-byte burst occupies the channel.  A 2 GHz core with a
#: ~16 GB/s channel moves 64 B in roughly 8 core cycles.
DEFAULT_BURST_CYCLES = 8


class MemoryController:
    """Serialising memory channel + DRAM latency."""

    def __init__(
        self,
        dram: DramModel | None = None,
        burst_cycles: int = DEFAULT_BURST_CYCLES,
    ):
        if burst_cycles < 1:
            raise ValueError("burst_cycles must be >= 1")
        self.dram = dram if dram is not None else DramModel()
        self.burst_cycles = burst_cycles
        self._channel_free_at = 0
        self.demand_fetches = 0
        self.prefetch_fetches = 0
        self.writebacks = 0
        self.total_queue_wait = 0

    # ------------------------------------------------------------------

    def fetch(self, byte_address: int, now: int, prefetch: bool = False) -> int:
        """Fetch one line; return total latency (queue wait + DRAM).

        ``now`` is the cycle the request reaches the controller.
        The channel-occupancy arithmetic is inlined here (one call per
        LLC miss — keep it in sync with :meth:`_occupy_channel`, which
        stays the canonical form for the posted-writeback path), and
        the flat-latency DRAM mode skips the row-buffer model.
        """
        free_at = self._channel_free_at
        start = now if now > free_at else free_at
        wait = start - now
        self._channel_free_at = start + self.burst_cycles
        self.total_queue_wait += wait
        if prefetch:
            self.prefetch_fetches += 1
        else:
            self.demand_fetches += 1
        dram = self.dram
        if not dram.open_page:
            return wait + dram.latency
        return wait + dram.access_latency(byte_address)

    def writeback(self, byte_address: int, now: int) -> int:
        """Write one line back to memory; returns the queue wait.

        Writebacks are posted (they do not stall the evicting access)
        but they occupy the channel and therefore delay later fetches.
        """
        wait = self._occupy_channel(now)
        self.writebacks += 1
        return wait

    # ------------------------------------------------------------------

    @property
    def total_fetches(self) -> int:
        return self.demand_fetches + self.prefetch_fetches

    def channel_free_at(self) -> int:
        """Cycle at which the channel next becomes idle."""
        return self._channel_free_at

    def _occupy_channel(self, now: int) -> int:
        start = max(now, self._channel_free_at)
        wait = start - now
        self._channel_free_at = start + self.burst_cycles
        self.total_queue_wait += wait
        return wait

    def __repr__(self) -> str:
        return (
            f"MemoryController(fetches={self.total_fetches}, "
            f"writebacks={self.writebacks}, dram={self.dram!r})"
        )
