"""Memory-side substrate: DRAM timing and the on-chip memory controller
that hosts PiPoMonitor (Fig. 2 of the paper places the monitor inside
the MC, observing the memory fetch queue)."""

from repro.memory.controller import MemoryController
from repro.memory.dram import DramModel

__all__ = ["DramModel", "MemoryController"]
