"""Defense-aware adversaries against the recording filter itself
(Section VI-B and Fig. 7).

An attacker who knows PiPoMonitor is present tries to evict the
*filter record* of the target line before the victim's re-accesses
drive its Security counter to secThr.  Three strategies:

``brute_force_attack``   — flood the filter with fresh addresses.
  Autonomic deletion drops a near-uniformly random record per fill, so
  the expected number of fills to kill a specific record is b·l
  (8192 for the Table II filter) — too slow for the probe cadence.

``targeted_fill_attack`` — craft addresses whose candidate buckets are
  the target's bucket (the reverse-engineering attack of Fig. 7).
  With MNK = 0 this evicts the target in ~b fills; every +1 of MNK
  forces the attacker through one more layer of relocation, growing the
  needed eviction set like b**(MNK+1).

``false_deletion_attack``— against the *classic* cuckoo filter only:
  find an alias address (same fingerprint, overlapping candidate
  bucket) and delete it, removing the target's record (Section V-A).
  The Auto-Cuckoo filter exposes no delete operation, closing this.

All attacks run against an instrumented filter so "is the target's own
record still alive" is exact (fingerprint collisions would otherwise
mask evictions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.filters.auto_cuckoo import AutoCuckooFilter
from repro.filters.cuckoo import CuckooFilter
from repro.utils.rng import derive_rng

#: Address space adversarial fills sample from.
DEFAULT_ADDRESS_SPACE_LINES = 1 << 30


def analytic_eviction_set_size(entries_per_bucket: int, max_kicks: int) -> int:
    """Fig. 7's combinatorial bound: b**(MNK+1) addresses.

    Table II (b=8, MNK=4) gives 32768 — costlier than brute force,
    which is the paper's argument for MNK = 4.
    """
    if entries_per_bucket < 1 or max_kicks < 0:
        raise ValueError("invalid filter geometry")
    return entries_per_bucket ** (max_kicks + 1)


def fill_to_capacity(
    fltr: AutoCuckooFilter, seed: int = 0,
    address_space: int = DEFAULT_ADDRESS_SPACE_LINES,
    max_fills: int | None = None,
) -> int:
    """Insert fresh random addresses until occupancy reaches 100 %.

    Returns the number of insertions used.  The security analysis
    assumes a full filter (every fill then evicts exactly one record).
    """
    rng = derive_rng(seed, "fill-to-capacity")
    randrange = rng.randrange
    cap = max_fills if max_fills is not None else fltr.capacity * 64
    fills = 0
    # Batched sweep: each access grows ``valid_count`` by at most one,
    # so a span of ``capacity - valid_count`` accesses can never
    # overshoot the stop condition — the loop drives exactly the same
    # address stream through ``access_many`` span by span and stops on
    # the same fill count as the per-access form.
    while fltr.valid_count < fltr.capacity:
        if fills >= cap:
            raise RuntimeError(
                f"filter did not reach capacity in {cap} fills"
            )
        span = min(fltr.capacity - fltr.valid_count, cap - fills)
        fltr.access_many(randrange(address_space) for _ in range(span))
        fills += span
    return fills


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of one brute-force eviction attempt."""

    fills: int
    evicted: bool
    capacity: int


def brute_force_attack(
    fltr: AutoCuckooFilter,
    target: int,
    seed: int = 0,
    max_fills: int = 1_000_000,
    address_space: int = DEFAULT_ADDRESS_SPACE_LINES,
) -> BruteForceResult:
    """Flood a (pre-filled, instrumented) filter until the target's
    record dies; returns the fills needed."""
    if not fltr.instrumented:
        raise ValueError("brute force attack needs an instrumented filter")
    fltr.access(target)
    rng = derive_rng(seed, "brute-force-fills")
    fills = 0
    while fltr.holds_address(target):
        if fills >= max_fills:
            return BruteForceResult(fills, False, fltr.capacity)
        candidate = rng.randrange(address_space)
        if candidate == target:
            continue
        fltr.access(candidate)
        fills += 1
    return BruteForceResult(fills, True, fltr.capacity)


def brute_force_expectation(
    runs: int = 20,
    num_buckets: int = 64,
    entries_per_bucket: int = 8,
    max_kicks: int = 4,
    seed: int = 0,
    max_fills: int = 1_000_000,
) -> tuple[float, int]:
    """Monte-Carlo mean fills to evict a target record.

    Returns ``(mean_fills, b·l)`` — Section VI-B predicts the two to
    match ("we found the adversary needed 8192 memory accesses on
    average" for b=8, l=1024).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    total = 0.0
    capacity = num_buckets * entries_per_bucket
    for run in range(runs):
        fltr = AutoCuckooFilter(
            num_buckets=num_buckets,
            entries_per_bucket=entries_per_bucket,
            fingerprint_bits=14,
            max_kicks=max_kicks,
            seed=seed + run,
            instrument=True,
        )
        fill_to_capacity(fltr, seed=seed + 1000 + run)
        result = brute_force_attack(
            fltr, target=0x5EED_0000 + run,
            seed=seed + 2000 + run, max_fills=max_fills,
        )
        if not result.evicted:
            raise RuntimeError("brute force hit the fill cap")
        total += result.fills
    return total / runs, capacity


@dataclass(frozen=True)
class TargetedFillResult:
    """Outcome of one reverse-engineering fill campaign."""

    fills: int
    evicted: bool
    max_kicks: int
    entries_per_bucket: int


def targeted_fill_attack(
    max_kicks: int,
    num_buckets: int = 16,
    entries_per_bucket: int = 4,
    fingerprint_bits: int = 14,
    seed: int = 0,
    max_fills: int = 200_000,
    address_space: int = DEFAULT_ADDRESS_SPACE_LINES,
) -> TargetedFillResult:
    """Reverse-engineering adversary: hammer the target's own bucket
    with crafted congruent addresses until the target's record dies.

    With MNK = 0 each crafted fill evicts a uniformly random resident
    of the bucket (expected ~b fills).  With MNK ≥ 1 a fill only kills
    the target when the relocation walk ends on it after exactly MNK
    hops, so the expected fills grow explosively — the empirical face
    of Fig. 7's b**(MNK+1) eviction-set bound.
    """
    fltr = AutoCuckooFilter(
        num_buckets=num_buckets,
        entries_per_bucket=entries_per_bucket,
        fingerprint_bits=fingerprint_bits,
        max_kicks=max_kicks,
        seed=seed,
        instrument=True,
    )
    fill_to_capacity(fltr, seed=seed + 1)
    target = 0x7A46_0000 + seed
    fltr.access(target)
    if not fltr.holds_address(target):
        # The plant itself was churned out; retry deterministically.
        fltr.access(target)
    _, target_bucket, target_alt = fltr.hasher.candidate_buckets(target)
    rng = derive_rng(seed, "targeted-fills")
    fills = 0
    while fltr.holds_address(target):
        if fills >= max_fills:
            return TargetedFillResult(
                fills, False, max_kicks, entries_per_bucket
            )
        # Craft an address whose primary bucket is one of the target's
        # candidate buckets (preimage search over random addresses).
        while True:
            candidate = rng.randrange(address_space)
            if candidate == target:
                continue
            if fltr.hasher.index1(candidate) in (target_bucket, target_alt):
                break
        fltr.access(candidate)
        fills += 1
    return TargetedFillResult(fills, True, max_kicks, entries_per_bucket)


@dataclass(frozen=True)
class FalseDeletionResult:
    """Outcome of the classic-filter false-deletion attack."""

    alias: int | None
    searched: int
    target_removed: bool


def false_deletion_attack(
    fltr: CuckooFilter,
    target: int,
    seed: int = 0,
    search_limit: int = 5_000_000,
    address_space: int = DEFAULT_ADDRESS_SPACE_LINES,
) -> FalseDeletionResult:
    """Remove the target's record from a *classic* cuckoo filter by
    deleting an attacker-controlled alias (Section V-A).

    Searches random addresses for one sharing the target's fingerprint
    and a candidate bucket, then deletes it.  Works because classic
    deletion cannot distinguish which address inserted a fingerprint.
    """
    fp, i1, i2 = fltr.hasher.candidate_buckets(target)
    rng = derive_rng(seed, "false-deletion-search")
    for searched in range(1, search_limit + 1):
        candidate = rng.randrange(address_space)
        if candidate == target:
            continue
        cfp, c1, c2 = fltr.hasher.candidate_buckets(candidate)
        if cfp == fp and {c1, c2} & {i1, i2}:
            fltr.delete(candidate)
            return FalseDeletionResult(
                alias=candidate,
                searched=searched,
                target_removed=not fltr.contains(target),
            )
    return FalseDeletionResult(alias=None, searched=search_limit,
                               target_removed=False)
