"""Probe-timeline analysis: key recovery and Fig. 6 rendering.

The inference rule mirrors the paper's attacker: the square routine
executes only for key bit 1, so an iteration whose square-set probe
observed an eviction is inferred as bit 1.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Iterations to skip in the steady-state accuracy: the defense needs
#: secThr re-fetches before a line is protected, so the first few
#: iterations leak even with the monitor on.
DEFAULT_WARMUP_ITERATIONS = 20


def adaptive_warmup(iterations: int) -> int:
    """The default warmup, clamped so short timelines stay scoreable."""
    if iterations < 1:
        raise ValueError("iterations must be positive")
    return min(DEFAULT_WARMUP_ITERATIONS, iterations // 4)


def infer_bits_from_observations(square_observed: list[bool]) -> list[int]:
    """Bit = 1 iff the square line's eviction set lost a line."""
    return [1 if observed else 0 for observed in square_observed]


@dataclass(frozen=True)
class KeyRecovery:
    """Key-recovery quality of one attack run."""

    inferred_bits: list[int]
    true_bits: list[int]
    accuracy: float
    steady_accuracy: float
    warmup: int

    @property
    def leaks(self) -> bool:
        """Heuristic: steady-state accuracy far above the majority-class
        baseline means the timeline carries key information."""
        ones = sum(self.true_bits) / len(self.true_bits)
        majority = max(ones, 1.0 - ones)
        return self.steady_accuracy > majority + 0.15


def key_recovery(
    square_observed: list[bool],
    true_bits: list[int],
    warmup: int = DEFAULT_WARMUP_ITERATIONS,
) -> KeyRecovery:
    """Score the attacker's inference against the true key bits."""
    if len(square_observed) != len(true_bits):
        raise ValueError("observation and key length mismatch")
    if not true_bits:
        raise ValueError("empty timeline")
    if not 0 <= warmup < len(true_bits):
        raise ValueError("warmup must leave at least one iteration")
    inferred = infer_bits_from_observations(square_observed)
    matches = [i == t for i, t in zip(inferred, true_bits)]
    accuracy = sum(matches) / len(matches)
    steady = matches[warmup:]
    steady_accuracy = sum(steady) / len(steady)
    return KeyRecovery(
        inferred_bits=inferred,
        true_bits=list(true_bits),
        accuracy=accuracy,
        steady_accuracy=steady_accuracy,
        warmup=warmup,
    )


def render_timeline(
    square_observed: list[bool],
    multiply_observed: list[bool],
    true_bits: list[int],
    width: int = 50,
) -> str:
    """ASCII rendering of Fig. 6: one column per attack iteration,
    ``●`` where the attacker observed an access (a blue dot in the
    paper), ``·`` where it did not."""
    if not (len(square_observed) == len(multiply_observed) == len(true_bits)):
        raise ValueError("timeline length mismatch")

    def dots(flags):
        return "".join("●" if f else "·" for f in flags)

    lines = []
    for start in range(0, len(true_bits), width):
        stop = min(start + width, len(true_bits))
        lines.append(f"iter {start:>4}..{stop - 1:<4}")
        lines.append(f"  key bits : {''.join(str(b) for b in true_bits[start:stop])}")
        lines.append(f"  square   : {dots(square_observed[start:stop])}")
        lines.append(f"  multiply : {dots(multiply_observed[start:stop])}")
    return "\n".join(lines)
