"""Eviction-set construction.

Two tools:

``build_eviction_set`` — the threat model of LLC Prime+Probe work
(Liu et al., S&P'15) grants the attacker knowledge of the set/slice
mapping; this constructs, by address arithmetic, attacker-owned lines
congruent with a target line.

``reduce_eviction_set`` — the classic group-testing reduction that
shrinks a large candidate pool to a minimal eviction set using only an
"does this set still evict?" oracle — for attackers *without* mapping
knowledge.  Included because real attack campaigns build sets this way;
the Fig. 6 experiment uses the arithmetic variant.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.cache.llc import SlicedLLC

LINE = 64


def build_eviction_set(
    llc: SlicedLLC,
    target_byte_address: int,
    attacker_base_byte_address: int,
    size: int | None = None,
) -> list[int]:
    """Return ``size`` attacker byte addresses congruent with the target.

    ``size`` defaults to the LLC associativity (enough to fill the
    set).  Addresses are drawn from the attacker's own region at
    ``attacker_base_byte_address``, stepping one set-stride at a time
    and keeping those that land in the target's slice.
    """
    if size is None:
        size = llc.ways
    if size < 1:
        raise ValueError("eviction set size must be >= 1")
    target_line = target_byte_address // LINE
    base_line = attacker_base_byte_address // LINE
    sets = llc.geometry.num_sets
    # Align the candidate walk to the target's set index.
    start = base_line - (base_line % sets) + (target_line % sets)
    if start < base_line:
        start += sets
    addresses: list[int] = []
    candidate = start
    while len(addresses) < size:
        if llc.congruent(candidate, target_line):
            addresses.append(candidate * LINE)
        candidate += sets
    return addresses


def reduce_eviction_set(
    candidates: Sequence[int],
    evicts: Callable[[Sequence[int]], bool],
    associativity: int,
) -> list[int]:
    """Group-testing reduction to a minimal eviction set.

    ``evicts(subset)`` must answer whether ``subset`` still evicts the
    target.  Standard algorithm: while the set is larger than the
    associativity, split it into ``associativity + 1`` groups; at least
    one group is redundant (the remaining groups still contain a full
    congruent set), so drop the first such group and repeat.

    Runs in O(a·n) oracle calls.  Raises ``ValueError`` when the full
    candidate pool does not evict (no reduction possible).
    """
    if associativity < 1:
        raise ValueError("associativity must be >= 1")
    working = list(candidates)
    if not evicts(working):
        raise ValueError("candidate pool does not evict the target")
    while len(working) > associativity:
        # Exactly a+1 (round-robin) groups: with at most `associativity`
        # truly-congruent lines, the pigeonhole principle guarantees
        # one group is free of them and therefore droppable.
        group_count = associativity + 1
        groups = [working[i::group_count] for i in range(group_count)]
        for index, group in enumerate(groups):
            rest = [
                addr
                for other_index, other in enumerate(groups)
                if other_index != index
                for addr in other
            ]
            if evicts(rest):
                working = rest
                break
        else:
            # No single group is droppable: the pool is already minimal
            # at this granularity.
            break
    return working
