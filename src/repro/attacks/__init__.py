"""Attack framework.

Cross-core Prime+Probe (Section VI-A): a square-and-multiply victim, an
attacker probing the two secret-dependent instruction lines through
eviction sets, and analysis utilities recovering the key from the probe
timeline.

Defense-aware filter adversaries (Section VI-B, Fig. 7): brute-force
fills, targeted reverse-engineering fills, and the classic filter's
false-deletion attack.

Flush-based channels (beyond the paper — Gruss et al., TPPD):
Flush+Reload and Flush+Flush attackers over the hierarchy's
``clflush`` primitive, plus a cross-core covert channel with measured
bandwidth and bit-error rate.
"""

from repro.attacks.analysis import (
    KeyRecovery,
    infer_bits_from_observations,
    key_recovery,
)
from repro.attacks.covert_channel import (
    CovertChannelResult,
    CovertReceiver,
    CovertSender,
    random_bits,
    run_covert_channel,
    shared_line_address,
)
from repro.attacks.evictionset import (
    build_eviction_set,
    reduce_eviction_set,
)
from repro.attacks.flush_reload import (
    FlushAttackResult,
    FlushFlushAttacker,
    FlushProbe,
    FlushReloadAttacker,
    run_flush_attack,
)
from repro.attacks.filter_attacks import (
    BruteForceResult,
    TargetedFillResult,
    analytic_eviction_set_size,
    brute_force_attack,
    brute_force_expectation,
    false_deletion_attack,
    fill_to_capacity,
    targeted_fill_attack,
)
from repro.attacks.primeprobe import (
    AttackResult,
    PrimeProbeAttacker,
    ProbeObservation,
    run_prime_probe_attack,
)
from repro.attacks.victim import SquareMultiplyVictim, random_key

__all__ = [
    "AttackResult",
    "BruteForceResult",
    "CovertChannelResult",
    "CovertReceiver",
    "CovertSender",
    "FlushAttackResult",
    "FlushFlushAttacker",
    "FlushProbe",
    "FlushReloadAttacker",
    "KeyRecovery",
    "PrimeProbeAttacker",
    "ProbeObservation",
    "SquareMultiplyVictim",
    "TargetedFillResult",
    "analytic_eviction_set_size",
    "brute_force_attack",
    "brute_force_expectation",
    "build_eviction_set",
    "false_deletion_attack",
    "fill_to_capacity",
    "infer_bits_from_observations",
    "key_recovery",
    "random_bits",
    "random_key",
    "reduce_eviction_set",
    "run_covert_channel",
    "run_flush_attack",
    "run_prime_probe_attack",
    "shared_line_address",
]
