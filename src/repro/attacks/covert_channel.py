"""Cross-core flush-based covert channel (TPPD's harder target).

A *sender* and a *receiver* collude across cores over one shared cache
line — no secret-dependent victim needed.  Per bit window:

* the sender loads the shared line mid-window when transmitting a 1
  and stays idle for a 0;
* the receiver performs Flush+Reload at the window boundary: a fast
  reload means the sender touched the line (bit 1), then the flush
  re-arms the channel for the next window.

Ground truth is the transmitted bit string, so the channel's quality
is *measured*: raw signalling rate (one bit per window), bit error
rate against the truth, and the binary-symmetric-channel capacity that
error rate leaves — the number PiPoMonitor's prefetch response must
drive down.  The receiver's reloads are demand fetches, so the shared
line ping-pongs through the filter exactly like an attacked victim
line; once captured, every flush raises a pEvict and the prefetched
line makes the receiver read 1 regardless of the sender.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cache.hierarchy import OP_FLUSH, OP_READ
from repro.core.config import SystemConfig, TABLE_II
from repro.cpu.multicore import SimulationResult
from repro.cpu.system import run_defended_workloads
from repro.utils.rng import derive_rng
from repro.workloads.base import Workload, core_data_base

from repro.attacks.flush_reload import DEFAULT_MISS_THRESHOLD

RECEIVER_CORE = 0
SENDER_CORE = 1

#: Byte offset of the shared line inside the sender's data region
#: (modelling a shared read-only page mapped into both processes).
SHARED_LINE_OFFSET = 0x4000

#: Smallest usable bit window: the receiver's per-window probe costs a
#: reload to DRAM (~255 cycles) plus a flush (~37), and the sender's
#: mid-window load needs room on the other side — below this the
#: endpoints desynchronise and decode bits from the wrong windows.
MIN_WINDOW = 1000


def shared_line_address(sender_core: int = SENDER_CORE) -> int:
    """Byte address of the covert channel's shared cache line."""
    return core_data_base(sender_core) + SHARED_LINE_OFFSET


def random_bits(count: int, seed: int) -> list[int]:
    """A reproducible random payload of 0/1 bits."""
    if count < 1:
        raise ValueError("payload must have at least one bit")
    rng = derive_rng(seed, "covert-payload")
    return [rng.randrange(2) for _ in range(count)]


class CovertSender(Workload):
    """Loads the shared line mid-window for every 1 bit.

    ``address`` defaults to the channel's canonical shared line; both
    endpoints take it as a parameter (never derive it from their own
    core placement) so a misplaced pair cannot silently end up
    signalling on two different lines.
    """

    name = "covert-sender"

    def __init__(
        self,
        bits: list[int],
        window: int = 5000,
        address: int | None = None,
    ):
        if not bits or any(bit not in (0, 1) for bit in bits):
            raise ValueError("bits must be a non-empty list of 0/1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.bits = list(bits)
        self.window = window
        self.address = (
            address if address is not None else shared_line_address()
        )

    def generator(self, core_id: int, seed: int):
        address = self.address
        clock = 0
        for index, bit in enumerate(self.bits):
            # Aim the transmission at the middle of the window,
            # self-clocked like the square-multiply victim.
            target_time = index * self.window + self.window // 2
            gap = target_time - clock
            if gap > 0:
                yield gap, None, 0
                clock += gap
            if bit:
                clock += yield 0, OP_READ, address


class CovertReceiver(Workload):
    """Flush+Reload on the shared line at every window boundary."""

    name = "covert-receiver"

    def __init__(
        self,
        windows: int,
        window: int = 5000,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
        address: int | None = None,
    ):
        if windows < 1:
            raise ValueError("windows must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.windows = windows
        self.window = window
        self.miss_threshold = miss_threshold
        self.address = (
            address if address is not None else shared_line_address()
        )
        self.received: list[int] = []
        self.latencies: list[int] = []

    def generator(self, core_id: int, seed: int):
        address = self.address
        clock = 0
        # Arm the channel: start window 0 with the line flushed.
        clock += yield 0, OP_FLUSH, address
        for index in range(self.windows):
            wait = (index + 1) * self.window - clock
            if wait > 0:
                yield wait, None, 0
                clock += wait
            latency = yield 0, OP_READ, address
            clock += latency
            self.latencies.append(latency)
            self.received.append(1 if latency < self.miss_threshold else 0)
            clock += yield 0, OP_FLUSH, address


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


@dataclass
class CovertChannelResult:
    """Measured quality of one covert-channel run."""

    defence: str
    window: int
    sent_bits: list[int]
    received_bits: list[int]
    monitor_stats: object | None
    simulation: SimulationResult
    extra: dict = field(default_factory=dict)

    @property
    def bit_errors(self) -> int:
        return sum(s != r for s, r in zip(self.sent_bits, self.received_bits))

    @property
    def error_rate(self) -> float:
        return self.bit_errors / len(self.sent_bits)

    @property
    def raw_bandwidth(self) -> float:
        """Signalling rate in bits per million cycles (one bit per
        window, regardless of whether it arrives intact)."""
        return 1_000_000 / self.window

    @property
    def effective_bandwidth(self) -> float:
        """Binary-symmetric-channel capacity the measured error rate
        leaves: ``raw * (1 - H2(p))`` bits per million cycles."""
        return self.raw_bandwidth * (1.0 - _binary_entropy(self.error_rate))


def run_covert_channel(
    defence: str = "none",
    bits: list[int] | None = None,
    n_bits: int = 64,
    window: int = 5000,
    seed: int = 0,
    config: SystemConfig | None = None,
    detection=None,
) -> CovertChannelResult:
    """Transmit a payload across cores; measure bandwidth and errors.

    ``defence`` is any name from
    :data:`repro.baselines.registry.DEFENCES`; ``window`` must leave
    room for one probe and one transmission per bit
    (:data:`MIN_WINDOW`).  ``detection`` (a
    :class:`repro.detection.DetectionSpec`) deploys the online
    detection-and-response subsystem — the responses that actually cut
    the measured capacity mid-run.
    """
    if window < MIN_WINDOW:
        raise ValueError(
            f"window {window} below MIN_WINDOW ({MIN_WINDOW}): the "
            "per-window probe cost would desynchronise the endpoints"
        )
    config = config if config is not None else TABLE_II
    if bits is None:
        bits = random_bits(n_bits, seed)
    sender = CovertSender(bits, window=window)
    receiver = CovertReceiver(len(bits), window=window)

    workloads: list[Workload] = [None, None]
    workloads[RECEIVER_CORE] = receiver
    workloads[SENDER_CORE] = sender
    simulation, monitor, hierarchy = run_defended_workloads(
        config, workloads, defence, seed=seed, seed_label="covert",
        pad_idle=True, detection=detection,
    )

    return CovertChannelResult(
        defence=defence,
        window=window,
        sent_bits=list(bits),
        received_bits=list(receiver.received),
        monitor_stats=getattr(monitor, "stats", None),
        simulation=simulation,
        extra={
            "flushes": hierarchy.stats.flushes,
            "flush_hits": hierarchy.stats.flush_hits,
        },
    )
