"""The victim: GnuPG-1.4.13-style Square-and-Multiply exponentiation.

Section VI-A: "The algorithm processes the key iteratively from high to
low bits, one bit in each iteration.  If the bit is 1, square and
multiply performed; otherwise, only multiply performed.  The sequence of
above operations indirectly expose the key."

The side channel is *which instruction cache lines execute*: the entry
lines of the ``square`` and ``multiply`` routines.  The victim model
emits exactly that line-touch sequence, paced so one key bit is
processed per attacker probe interval.
"""

from __future__ import annotations

from repro.cache.hierarchy import OP_IFETCH
from repro.cpu.core import WorkloadGenerator
from repro.utils.rng import derive_rng
from repro.workloads.base import Workload, core_code_base

LINE = 64

#: Byte offsets of the two monitored routine entry points inside the
#: victim's code region.  Separated by many lines so they never share a
#: cache line and land in different LLC sets.
SQUARE_OFFSET = 0x0
MULTIPLY_OFFSET = 0x1000


def random_key(bits: int, seed: int) -> list[int]:
    """A reproducible random key as a list of 0/1 bits (MSB first)."""
    if bits < 1:
        raise ValueError("key must have at least one bit")
    rng = derive_rng(seed, "victim-key")
    return [rng.randrange(2) for _ in range(bits)]


class SquareMultiplyVictim(Workload):
    """Runs the exponentiation loop over ``key``, repeatedly.

    Parameters
    ----------
    key:
        The secret bit sequence (MSB first).
    iteration_cycles:
        Compute cycles per key bit; the paper's attacker probes every
        5000 cycles, so the default paces one bit per probe.
    repetitions:
        How many times to run the whole key (GnuPG decrypts many
        blocks; the attacker needs only one pass here).
    """

    name = "square-multiply-victim"

    def __init__(
        self,
        key: list[int],
        iteration_cycles: int = 5000,
        repetitions: int = 4,
    ):
        if not key or any(bit not in (0, 1) for bit in key):
            raise ValueError("key must be a non-empty list of 0/1 bits")
        if iteration_cycles < 1:
            raise ValueError("iteration_cycles must be >= 1")
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.key = list(key)
        self.iteration_cycles = iteration_cycles
        self.repetitions = repetitions

    def square_address(self, core_id: int) -> int:
        """Byte address of the ``square`` routine's entry line."""
        return core_code_base(core_id) + SQUARE_OFFSET

    def multiply_address(self, core_id: int) -> int:
        """Byte address of the ``multiply`` routine's entry line."""
        return core_code_base(core_id) + MULTIPLY_OFFSET

    def generator(self, core_id: int, seed: int) -> WorkloadGenerator:
        square = self.square_address(core_id)
        multiply = self.multiply_address(core_id)
        # Self-clocked pacing: the victim aims each iteration's fetches
        # at the middle of its window (i·P + P/2) by tracking elapsed
        # compute plus observed fetch latencies.  Without the
        # correction, miss latencies accumulate into multi-iteration
        # drift against the attacker's probe schedule.
        clock = 0
        iteration = 0
        for _ in range(self.repetitions):
            for bit in self.key:
                target_time = iteration * self.iteration_cycles + (
                    self.iteration_cycles // 2
                )
                gap = target_time - clock
                if gap > 0:
                    yield gap, None, 0
                    clock += gap
                if bit:
                    clock += yield 0, OP_IFETCH, square
                clock += yield 0, OP_IFETCH, multiply
                iteration += 1

    def ground_truth(self, iterations: int) -> list[int]:
        """The bit processed in each of the first ``iterations``
        iterations (key repeated cyclically)."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        bits = []
        while len(bits) < iterations:
            bits.extend(self.key)
        return bits[:iterations]
