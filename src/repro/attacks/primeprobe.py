"""Cross-core Prime+Probe on the shared LLC (Section VI-A).

The attacker owns one core, the victim another.  Every ``probe_period``
cycles (5000 in the paper) the attacker walks one eviction set per
monitored target line and times each load; a load above the miss
threshold means the set lost a line since the last probe — i.e. the
victim (or a defense's prefetch) touched the congruent target.

Both attacker and victim self-clock — they count yielded compute plus
returned latencies — so probe *i* lands at the end of the window in
which the victim processed key bit *i*, keeping the timeline aligned
without any side information.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.attacks.evictionset import build_eviction_set
from repro.attacks.victim import SquareMultiplyVictim, random_key
from repro.cache.hierarchy import OP_READ
from repro.core.config import SystemConfig, TABLE_II
from repro.core.pipomonitor import PiPoMonitor
from repro.cpu.core import Core, WorkloadGenerator
from repro.cpu.multicore import MulticoreSystem
from repro.utils.events import EventQueue
from repro.utils.rng import derive_seed
from repro.workloads.base import ScriptedWorkload, Workload, core_data_base

#: Latency separating an LLC hit (2+18+35 = 55) from a memory access
#: (≥ 255) in the Table II configuration.
DEFAULT_MISS_THRESHOLD = 150

ATTACKER_CORE = 0
VICTIM_CORE = 1


@dataclass(frozen=True)
class ProbeObservation:
    """One eviction-set probe."""

    iteration: int
    target_index: int
    misses: int
    clock: int

    @property
    def observed(self) -> bool:
        """True when the probe saw at least one evicted line — the
        attacker's 'victim accessed the target' signal (a Fig. 6 dot)."""
        return self.misses > 0


class PrimeProbeAttacker(Workload):
    """The probing workload.  ``eviction_sets`` must be assigned before
    the generator is first advanced (they depend on the built LLC)."""

    name = "prime-probe-attacker"

    def __init__(
        self,
        iterations: int,
        probe_period: int = 5000,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if probe_period < 1:
            raise ValueError("probe_period must be >= 1")
        self.iterations = iterations
        self.probe_period = probe_period
        self.miss_threshold = miss_threshold
        self.eviction_sets: list[list[int]] | None = None
        self.observations: list[ProbeObservation] = []

    def generator(self, core_id: int, seed: int) -> WorkloadGenerator:
        if self.eviction_sets is None:
            raise RuntimeError(
                "eviction_sets must be assigned before the attack runs"
            )
        clock = 0
        # Prime: fill every monitored set with attacker lines.
        for eviction_set in self.eviction_sets:
            for address in eviction_set:
                latency = yield 0, OP_READ, address
                clock += latency
        for iteration in range(self.iterations):
            # Wait until the end of the victim's iteration window.
            wait = (iteration + 1) * self.probe_period - clock
            if wait > 0:
                yield wait, None, 0
                clock += wait
            # Probe (and thereby re-prime) each eviction set.  The walk
            # direction alternates every round (zigzag): probing in the
            # same order as the previous prime makes the refetch of the
            # one missing line evict the next line about to be probed —
            # a self-eviction cascade that destroys the measurement
            # under LRU.  Reversing direction each round leaves exactly
            # the victim's line as the LRU choice.
            for target_index, eviction_set in enumerate(self.eviction_sets):
                walk = (
                    eviction_set if iteration % 2 else list(reversed(eviction_set))
                )
                misses = 0
                for address in walk:
                    latency = yield 0, OP_READ, address
                    clock += latency
                    if latency >= self.miss_threshold:
                        misses += 1
                self.observations.append(
                    ProbeObservation(iteration, target_index, misses, clock)
                )

    def observed_matrix(self) -> list[list[bool]]:
        """``matrix[target_index][iteration]`` → observed flag."""
        n_targets = len(self.eviction_sets or [])
        matrix = [[False] * self.iterations for _ in range(n_targets)]
        for obs in self.observations:
            matrix[obs.target_index][obs.iteration] = obs.observed
        return matrix


@dataclass
class AttackResult:
    """Everything Fig. 6 needs, for one configuration."""

    monitor_enabled: bool
    iterations: int
    key_bits: list[int]
    square_observed: list[bool]
    multiply_observed: list[bool]
    observations: list[ProbeObservation]
    monitor_stats: object | None
    extra: dict = field(default_factory=dict)


def run_prime_probe_attack(
    monitor_enabled: bool = True,
    iterations: int = 100,
    seed: int = 0,
    config: SystemConfig | None = None,
    probe_period: int = 5000,
    key: list[int] | None = None,
    detection=None,
) -> AttackResult:
    """Run the full Fig. 6 scenario on the Table II system.

    The victim's square/multiply entry lines are probed for
    ``iterations`` attack iterations; returns the per-iteration
    observation timeline plus ground truth.  ``detection`` (a
    :class:`repro.detection.DetectionSpec`, requires the monitor)
    deploys the online detection-and-response subsystem; its report
    lands in ``extra["simulation"].extra["detection"]``.
    """
    base_config = config if config is not None else TABLE_II
    system_config = replace(base_config, monitor_enabled=monitor_enabled)
    if key is None:
        key = random_key(iterations, seed)
    victim = SquareMultiplyVictim(
        key, iteration_cycles=probe_period,
        repetitions=max(1, -(-(iterations + 2) // len(key))),
    )
    attacker = PrimeProbeAttacker(iterations, probe_period=probe_period)

    events = EventQueue()
    hierarchy = system_config.build_hierarchy(seed=seed)
    monitor = None
    if system_config.monitor_enabled:
        fltr = system_config.filter.build(seed=derive_seed(seed, "filter"))
        monitor = PiPoMonitor(
            fltr, events, prefetch_delay=system_config.prefetch_delay
        )
        monitor.attach(hierarchy)
    bus = None
    if detection is not None:
        if monitor is None:
            raise ValueError(
                "detection requires the monitor (monitor_enabled=True)"
            )
        bus = detection.attach_bus(monitor)

    targets = [
        victim.square_address(VICTIM_CORE),
        victim.multiply_address(VICTIM_CORE),
    ]
    attacker.eviction_sets = [
        build_eviction_set(
            hierarchy.llc, target, core_data_base(ATTACKER_CORE)
        )
        for target in targets
    ]

    workloads: list[Workload] = [attacker, victim]
    while len(workloads) < system_config.num_cores:
        workloads.append(ScriptedWorkload([(0, None, 0)], name="idle"))
    cores = [
        Core(core_id, wl.generator(core_id, derive_seed(seed, "attack", core_id)),
             hierarchy)
        for core_id, wl in enumerate(workloads)
    ]
    unit = None
    if detection is not None:
        unit = detection.deploy(bus, events, hierarchy, cores)
    simulation = MulticoreSystem(hierarchy, cores, events, detection=unit).run()

    matrix = attacker.observed_matrix()
    return AttackResult(
        monitor_enabled=system_config.monitor_enabled,
        iterations=iterations,
        key_bits=victim.ground_truth(iterations),
        square_observed=matrix[0],
        multiply_observed=matrix[1],
        observations=attacker.observations,
        monitor_stats=monitor.stats if monitor is not None else None,
        extra={
            "eviction_set_sizes": [len(s) for s in attacker.eviction_sets],
            "llc_evictions": hierarchy.stats.llc_evictions,
            # Full engine-level outcome, for the conformance harness's
            # bit-identical digests.
            "simulation": simulation,
        },
    )
