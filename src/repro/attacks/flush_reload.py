"""Flush-based cross-core attacks: Flush+Reload and Flush+Flush.

Both attacks target *shared* lines directly (the shared-library threat
model of Yarom & Falkner / Gruss et al.) instead of building eviction
sets, using the hierarchy's ``clflush`` primitive:

* **Flush+Reload** — flush the target, wait one victim window, reload
  it and time the load: a fast reload (LLC hit) means somebody brought
  the line back, i.e. the victim executed it.  The reload itself is a
  demand fetch, so the attack is *loud*: every probe of an un-touched
  line reaches memory and therefore the PiPoMonitor filter.
* **Flush+Flush** — never reload; time the *flush itself*.  A flush of
  a resident line pays the invalidation round trip, a flush of an
  absent line only the directory probe (see
  :meth:`repro.cache.hierarchy.CacheHierarchy.clflush`).  The attacker
  causes no demand fetches of its own — the stealthy variant whose
  only filter-visible traffic is the victim's refetches.

Defences observe flushes through the eviction hook: flushing a tagged
line raises the same pEvict a capacity eviction would, so PiPoMonitor's
prefetch response obfuscates flush probes exactly like Prime+Probe
probes, and BITP reacts to the flush-induced back-invalidations.

``run_flush_attack`` runs the full Fig. 9 scenario: the square-and-
multiply victim on one core, a flush attacker on another, any defence
from :mod:`repro.baselines.registry` on the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.victim import SquareMultiplyVictim, random_key
from repro.cache.hierarchy import OP_FLUSH, OP_READ
from repro.core.config import SystemConfig, TABLE_II
from repro.cpu.multicore import SimulationResult
from repro.cpu.system import run_defended_workloads
from repro.workloads.base import Workload

#: Reload-latency threshold separating an LLC hit (55 cycles in the
#: Table II configuration) from a memory access (>= 255) — same figure
#: Prime+Probe uses.
DEFAULT_MISS_THRESHOLD = 150

#: Flush-latency threshold separating a flush of an absent line
#: (l1 + llc = 37 cycles) from a flush that had to invalidate a
#: resident copy (l1 + 2*llc = 72, more when dirty) — the Flush+Flush
#: timing channel.
DEFAULT_FLUSH_HIT_THRESHOLD = 55

ATTACKER_CORE = 0
VICTIM_CORE = 1


@dataclass(frozen=True)
class FlushProbe:
    """One timed probe (a reload or a flush) of one target line."""

    iteration: int
    target_index: int
    latency: int
    hit: bool
    clock: int


class _FlushAttackerBase(Workload):
    """Shared plumbing of the two flush attackers.

    ``targets`` (byte addresses of the victim's secret-dependent
    lines) must be assigned before the generator is first advanced.
    Flush attackers time their probes, so they are never batchable.
    """

    def __init__(
        self,
        iterations: int,
        probe_period: int = 5000,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
        flush_hit_threshold: int = DEFAULT_FLUSH_HIT_THRESHOLD,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if probe_period < 1:
            raise ValueError("probe_period must be >= 1")
        self.iterations = iterations
        self.probe_period = probe_period
        self.miss_threshold = miss_threshold
        self.flush_hit_threshold = flush_hit_threshold
        self.targets: list[int] | None = None
        self.observations: list[FlushProbe] = []

    def _require_targets(self) -> list[int]:
        if self.targets is None:
            raise RuntimeError(
                "targets must be assigned before the attack runs"
            )
        return self.targets

    def observed_matrix(self) -> list[list[bool]]:
        """``matrix[target_index][iteration]`` → probe saw the line."""
        n_targets = len(self.targets or [])
        matrix = [[False] * self.iterations for _ in range(n_targets)]
        for obs in self.observations:
            matrix[obs.target_index][obs.iteration] = obs.hit
        return matrix


class FlushReloadAttacker(_FlushAttackerBase):
    """Per window: reload each target (timed), then flush it again."""

    name = "flush-reload-attacker"

    def generator(self, core_id: int, seed: int):
        targets = self._require_targets()
        clock = 0
        # Initial flush: start every window from an evicted state.
        for target in targets:
            clock += yield 0, OP_FLUSH, target
        for iteration in range(self.iterations):
            wait = (iteration + 1) * self.probe_period - clock
            if wait > 0:
                yield wait, None, 0
                clock += wait
            for index, target in enumerate(targets):
                latency = yield 0, OP_READ, target
                clock += latency
                self.observations.append(
                    FlushProbe(
                        iteration, index, latency,
                        latency < self.miss_threshold, clock,
                    )
                )
                # Re-arm for the next window.
                clock += yield 0, OP_FLUSH, target


class FlushFlushAttacker(_FlushAttackerBase):
    """Per window: flush each target and time the flush itself.

    The probe *is* the re-arm — the attacker never issues a demand
    fetch, so the only filter-visible traffic is the victim's own
    refetches (Gruss et al.'s stealth property).
    """

    name = "flush-flush-attacker"

    def generator(self, core_id: int, seed: int):
        targets = self._require_targets()
        clock = 0
        for target in targets:
            clock += yield 0, OP_FLUSH, target
        for iteration in range(self.iterations):
            wait = (iteration + 1) * self.probe_period - clock
            if wait > 0:
                yield wait, None, 0
                clock += wait
            for index, target in enumerate(targets):
                latency = yield 0, OP_FLUSH, target
                clock += latency
                self.observations.append(
                    FlushProbe(
                        iteration, index, latency,
                        latency >= self.flush_hit_threshold, clock,
                    )
                )


class AdaptiveFlushReloadAttacker(FlushReloadAttacker):
    """Flush+Reload that *reacts to the defence*: when its probes come
    back throttled it backs off.

    The attacker knows its own baseline timings (reload miss ≈ memory
    latency).  A reload far above that — ``throttle_threshold``,
    defaulting to well past any unthrottled miss — means the OS's
    ``throttle_core`` response is active, so the attacker goes quiet
    for ``backoff_windows`` windows before resuming, trading
    observations for stealth (the evasion the detection subsystem's
    rate detectors must still catch, and the fig10 response table
    quantifies as probe-rate reduction).
    """

    name = "adaptive-flush-reload-attacker"

    def __init__(
        self,
        iterations: int,
        probe_period: int = 5000,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
        flush_hit_threshold: int = DEFAULT_FLUSH_HIT_THRESHOLD,
        throttle_threshold: int = 350,
        backoff_windows: int = 4,
    ):
        super().__init__(
            iterations,
            probe_period=probe_period,
            miss_threshold=miss_threshold,
            flush_hit_threshold=flush_hit_threshold,
        )
        if throttle_threshold < 1:
            raise ValueError("throttle_threshold must be >= 1")
        if backoff_windows < 1:
            raise ValueError("backoff_windows must be >= 1")
        self.throttle_threshold = throttle_threshold
        self.backoff_windows = backoff_windows
        self.backoff_events = 0
        self.windows_probed = 0
        self.windows_skipped = 0

    @property
    def probe_rate(self) -> float:
        """Fraction of windows actually probed (1.0 = full rate)."""
        total = self.windows_probed + self.windows_skipped
        return self.windows_probed / total if total else 0.0

    def generator(self, core_id: int, seed: int):
        targets = self._require_targets()
        clock = 0
        for target in targets:
            clock += yield 0, OP_FLUSH, target
        skip_until = -1
        for iteration in range(self.iterations):
            wait = (iteration + 1) * self.probe_period - clock
            if wait > 0:
                yield wait, None, 0
                clock += wait
            if iteration <= skip_until:
                # Backing off: stay silent this window (no probes, no
                # re-arm — nothing for the monitor or the OS to see).
                self.windows_skipped += 1
                continue
            self.windows_probed += 1
            throttled = False
            for index, target in enumerate(targets):
                latency = yield 0, OP_READ, target
                clock += latency
                if latency >= self.throttle_threshold:
                    throttled = True
                self.observations.append(
                    FlushProbe(
                        iteration, index, latency,
                        latency < self.miss_threshold, clock,
                    )
                )
                clock += yield 0, OP_FLUSH, target
            if throttled:
                self.backoff_events += 1
                skip_until = iteration + self.backoff_windows


ATTACK_KINDS = {
    "flush_reload": FlushReloadAttacker,
    "flush_flush": FlushFlushAttacker,
    "adaptive_flush_reload": AdaptiveFlushReloadAttacker,
}


@dataclass
class FlushAttackResult:
    """Everything Fig. 9 needs, for one (attack, defence) cell."""

    kind: str
    defence: str
    iterations: int
    key_bits: list[int]
    square_observed: list[bool]
    multiply_observed: list[bool]
    observations: list[FlushProbe]
    monitor_stats: object | None
    simulation: SimulationResult
    extra: dict = field(default_factory=dict)


def run_flush_attack(
    kind: str = "flush_reload",
    defence: str = "none",
    iterations: int = 100,
    seed: int = 0,
    config: SystemConfig | None = None,
    probe_period: int = 5000,
    key: list[int] | None = None,
    detection=None,
) -> FlushAttackResult:
    """Run one flush attack against one defence on the Table II system.

    ``kind`` is ``"flush_reload"``, ``"flush_flush"``, or
    ``"adaptive_flush_reload"``; ``defence`` is any name from
    :data:`repro.baselines.registry.DEFENCES`.  ``detection`` (a
    :class:`repro.detection.DetectionSpec`) deploys the online
    detection-and-response subsystem; its report lands in
    ``result.simulation.extra["detection"]``.
    """
    if kind not in ATTACK_KINDS:
        raise ValueError(
            f"unknown attack kind {kind!r} (expected one of "
            f"{sorted(ATTACK_KINDS)})"
        )
    config = config if config is not None else TABLE_II
    if key is None:
        key = random_key(iterations, seed)
    victim = SquareMultiplyVictim(
        key, iteration_cycles=probe_period,
        repetitions=max(1, -(-(iterations + 2) // len(key))),
    )
    attacker = ATTACK_KINDS[kind](iterations, probe_period=probe_period)
    attacker.targets = [
        victim.square_address(VICTIM_CORE),
        victim.multiply_address(VICTIM_CORE),
    ]

    workloads: list[Workload] = [attacker, victim]
    simulation, monitor, hierarchy = run_defended_workloads(
        config, workloads, defence, seed=seed, seed_label="flush",
        pad_idle=True, detection=detection,
    )

    matrix = attacker.observed_matrix()
    extra = {
        "flushes": hierarchy.stats.flushes,
        "flush_hits": hierarchy.stats.flush_hits,
    }
    if isinstance(attacker, AdaptiveFlushReloadAttacker):
        extra["probe_rate"] = attacker.probe_rate
        extra["backoff_events"] = attacker.backoff_events
        extra["windows_probed"] = attacker.windows_probed
        extra["windows_skipped"] = attacker.windows_skipped
    return FlushAttackResult(
        kind=kind,
        defence=defence,
        iterations=iterations,
        key_bits=victim.ground_truth(iterations),
        square_observed=matrix[0],
        multiply_observed=matrix[1],
        observations=attacker.observations,
        monitor_stats=getattr(monitor, "stats", None),
        simulation=simulation,
        extra=extra,
    )
