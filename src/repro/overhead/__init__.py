"""Hardware overhead models (Section VII-D).

``storage``  — exact bit accounting: the Auto-Cuckoo filter's 15 KB
               against the 4 MB LLC (0.37 %), and the prior-work
               recorder for comparison.
``cacti``    — a CACTI-7-like analytic SRAM model at 22 nm used for
               the area figures (0.013 mm², +0.32 % over the LLC).
"""

from repro.overhead.cacti import SramMacro, area_of_bits
from repro.overhead.storage import (
    OverheadReport,
    llc_storage_bits,
    overhead_report,
    recorder_comparison,
)

__all__ = [
    "OverheadReport",
    "SramMacro",
    "area_of_bits",
    "llc_storage_bits",
    "overhead_report",
    "recorder_comparison",
]
