"""Analytic SRAM area/energy model (the CACTI-7 stand-in).

The paper runs CACTI 7 at 22 nm and reports the Auto-Cuckoo filter at
0.013 mm² — 0.32 % of the LLC's area.  CACTI itself is a large C++
tool; Section VII-D only needs array-level area (and, for our extended
tables, rough energy), so we model an SRAM macro from first-order
constants:

* 6T bit-cell area expressed in F² (``cell_area_f2``); 190 F² at
  F = 22 nm gives the 0.092 µm² cell of contemporary 22 nm processes.
* an array-efficiency factor folding in peripheral circuitry
  (decoders, sense amps, drivers) — 0.87 calibrated so the Table II
  filter macro lands on the paper's 0.013 mm².
* energy/leakage from per-bit constants with square-root wordline/
  bitline scaling — order-of-magnitude, clearly labelled as such.

The model scales with technology node quadratically, which is all the
sensitivity analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

DEFAULT_NODE_NM = 22.0
DEFAULT_CELL_AREA_F2 = 190.0
DEFAULT_ARRAY_EFFICIENCY = 0.87

#: Per-bit dynamic read energy at 22 nm (pJ) and static leakage (nW),
#: first-order constants for the extended energy table.
_READ_ENERGY_PJ_PER_BIT_SQRT = 0.011
_LEAKAGE_NW_PER_BIT = 0.012


@dataclass(frozen=True)
class SramMacro:
    """One SRAM array characterised by total bit count and node."""

    bits: int
    node_nm: float = DEFAULT_NODE_NM
    cell_area_f2: float = DEFAULT_CELL_AREA_F2
    array_efficiency: float = DEFAULT_ARRAY_EFFICIENCY

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("bits must be positive")
        if self.node_nm <= 0:
            raise ValueError("node_nm must be positive")
        if not 0.0 < self.array_efficiency <= 1.0:
            raise ValueError("array_efficiency must be in (0, 1]")

    @property
    def cell_area_um2(self) -> float:
        """Area of one 6T cell at this node (µm²)."""
        feature_um = self.node_nm * 1e-3
        return self.cell_area_f2 * feature_um * feature_um

    @property
    def area_mm2(self) -> float:
        """Macro area including peripherals (mm²)."""
        raw_um2 = self.bits * self.cell_area_um2 / self.array_efficiency
        return raw_um2 * 1e-6

    @property
    def read_energy_pj(self) -> float:
        """First-order dynamic energy of one read access (pJ)."""
        scale = (self.node_nm / DEFAULT_NODE_NM) ** 2
        return _READ_ENERGY_PJ_PER_BIT_SQRT * sqrt(self.bits) * scale

    @property
    def leakage_mw(self) -> float:
        """First-order static leakage (mW)."""
        scale = (self.node_nm / DEFAULT_NODE_NM) ** 2
        return _LEAKAGE_NW_PER_BIT * self.bits * scale * 1e-6


def area_of_bits(bits: int, node_nm: float = DEFAULT_NODE_NM) -> float:
    """Convenience: macro area (mm²) for ``bits`` at ``node_nm``."""
    return SramMacro(bits, node_nm=node_nm).area_mm2
