"""Storage and area accounting (Section VII-D).

The headline numbers this module reproduces:

* filter storage: 1024 × 8 entries × (12 fPrint + 2 Security + 1
  valid) bits = 15 KB;
* storage overhead over the 4 MB LLC: 0.37 %;
* filter area ≈ 0.013 mm² at 22 nm, ≈ 0.32 % of the LLC's area;
* the extension table: the same reach recorded with full-address tags
  (the prior-work stateful recorder) costs several times more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CacheLevelConfig, FilterConfig
from repro.overhead.cacti import SramMacro

#: LLC tag sizing for the area comparison: line address bits left after
#: set indexing, plus coherence/directory state per line.
DEFAULT_TAG_BITS = 28
DEFAULT_STATE_BITS_PER_LINE = 8
LINE_BITS = 512  # 64-byte data payload


def llc_storage_bits(
    llc: CacheLevelConfig,
    tag_bits: int = DEFAULT_TAG_BITS,
    state_bits: int = DEFAULT_STATE_BITS_PER_LINE,
) -> int:
    """Total LLC SRAM bits: data + tag + coherence state."""
    lines = llc.size_bytes // 64
    return lines * (LINE_BITS + tag_bits + state_bits)


@dataclass(frozen=True)
class OverheadReport:
    """PiPoMonitor cost relative to the LLC (the §VII-D table)."""

    filter_storage_kib: float
    llc_storage_kib: float
    storage_overhead_pct: float
    filter_area_mm2: float
    llc_area_mm2: float
    area_overhead_pct: float
    node_nm: float


def overhead_report(
    filter_config: FilterConfig,
    llc: CacheLevelConfig,
    node_nm: float = 22.0,
) -> OverheadReport:
    """Compute the paper's storage/area overhead numbers."""
    geometry = filter_config.geometry
    filter_bits = geometry.storage_bits
    llc_bits = llc_storage_bits(llc)
    filter_macro = SramMacro(filter_bits, node_nm=node_nm)
    llc_macro = SramMacro(llc_bits, node_nm=node_nm)
    # The paper quotes overhead against the LLC's *data capacity*
    # (15 KB / 4 MB = 0.37 %).
    llc_capacity_kib = llc.size_bytes / 1024
    return OverheadReport(
        filter_storage_kib=geometry.storage_kib,
        llc_storage_kib=llc_capacity_kib,
        storage_overhead_pct=100.0 * geometry.storage_kib / llc_capacity_kib,
        filter_area_mm2=filter_macro.area_mm2,
        llc_area_mm2=llc_macro.area_mm2,
        area_overhead_pct=100.0 * filter_macro.area_mm2 / llc_macro.area_mm2,
        node_nm=node_nm,
    )


@dataclass(frozen=True)
class RecorderComparison:
    """Storage of the Auto-Cuckoo filter vs a same-reach full-tag
    recorder (the 'order of magnitude lower' claim context)."""

    entries: int
    filter_kib: float
    filter_bits_per_entry: int
    recorder_kib: float
    recorder_bits_per_entry: int
    ratio: float


def recorder_comparison(
    filter_config: FilterConfig,
    line_address_bits: int = 40,
) -> RecorderComparison:
    """Compare per-entry storage against a full-address recorder.

    A stateful recorder needs the full line address per entry (tag),
    plus counter/valid/LRU — the fingerprint replaces the 40-bit tag
    with 12 bits, which is where the order-of-magnitude class saving
    per tracked line comes from.
    """
    geometry = filter_config.geometry
    recorder_bits_per_entry = line_address_bits + 2 + 1 + 3
    recorder_bits = geometry.entry_count * recorder_bits_per_entry
    recorder_kib = recorder_bits / 8 / 1024
    return RecorderComparison(
        entries=geometry.entry_count,
        filter_kib=geometry.storage_kib,
        filter_bits_per_entry=geometry.bits_per_entry,
        recorder_kib=recorder_kib,
        recorder_bits_per_entry=recorder_bits_per_entry,
        ratio=recorder_kib / geometry.storage_kib,
    )
