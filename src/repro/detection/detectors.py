"""Online alarm-stream detectors.

Each detector consumes the monitor→OS alarm stream
(:class:`repro.utils.events.AlarmBus` tuples) one event at a time and
emits :class:`Verdict` objects when the stream looks like an active
cross-core attack.  Three complementary views of the same stream:

* :class:`WindowedRateDetector` — pEvicts per sliding time window.
  The bluntest signal: any channel that keeps bouncing tagged lines
  out of the LLC (Prime+Probe probes, flush re-arms, covert-channel
  traffic) raises the pEvict rate far above benign inclusion noise.
* :class:`RegionEwmaDetector` — an exponentially-weighted moving
  average of alarm activity *per address region*.  Attacks hammer a
  handful of lines (the victim's secret-dependent lines, the covert
  channel's shared line); benign ping-pong spreads over the working
  set.  The EWMA is integer fixed-point so verdicts are bit-identical
  across engines and platforms.
* :class:`CrossCoreCorrelationDetector` — pEvicts on one line whose
  directory sharer masks span multiple cores within a window: the
  literal ping-pong signature (the line keeps changing cores).  Blind
  to Flush+Flush by design — the attacker never holds the line — so
  the ROC surface shows why a deployment layers detectors.

Detectors are pure functions of the alarm stream: no RNG, no
wall-clock, integer state only.  Replaying a recorded stream through
``observe`` reproduces the online verdicts exactly (the property the
``fig10`` ROC sweep and the Hypothesis suite pin).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.utils.events import ALARM_CAPTURE, ALARM_PEVICT

#: Fixed-point scale for the EWMA detector (16 fractional bits).
EWMA_SCALE = 1 << 16


@dataclass(frozen=True, slots=True)
class Verdict:
    """One detector firing.

    ``core`` is the accused core (``-1`` when the evidence names no
    single core), ``lines`` the accused cache lines (most recent
    first, deduplicated, capped) — the handles the response policies
    act on.  ``latency`` is measured from the first alarm the detector
    ever saw, i.e. the paper-style detection latency of the episode.
    """

    time: int
    detector: str
    score: int
    core: int
    lines: tuple[int, ...]
    latency: int


def _accuse(counts: dict[int, int]) -> int:
    """Most-frequently-seen core, ties broken toward the lowest id
    (deterministic); -1 when no core was ever named."""
    best = -1
    best_count = 0
    for core in sorted(counts):
        count = counts[core]
        if count > best_count:
            best, best_count = core, count
    return best


def _sharer_cores(sharers: int):
    core = 0
    while sharers:
        if sharers & 1:
            yield core
        sharers >>= 1
        core += 1


class WindowedRateDetector:
    """pEvict count over a sliding window of ``window`` cycles."""

    name = "rate"

    def __init__(
        self,
        window: int = 5000,
        threshold: int = 4,
        cooldown: int | None = None,
        max_lines: int = 4,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.window = window
        self.threshold = threshold
        self.cooldown = cooldown if cooldown is not None else window
        self.max_lines = max_lines
        self._events: deque[tuple[int, int, int]] = deque()  # (t, line, sharers)
        self._first_alarm: int | None = None
        self._last_fire: int | None = None

    def observe(
        self, kind: int, time: int, line_addr: int, core: int, sharers: int
    ) -> Verdict | None:
        if kind != ALARM_PEVICT:
            return None
        if self._first_alarm is None:
            self._first_alarm = time
        events = self._events
        events.append((time, line_addr, sharers))
        floor = time - self.window
        while events and events[0][0] <= floor:
            events.popleft()
        if len(events) < self.threshold:
            return None
        if self._last_fire is not None and time - self._last_fire < self.cooldown:
            return None
        self._last_fire = time
        counts: dict[int, int] = {}
        lines: list[int] = []
        for _, line, mask in reversed(events):
            for c in _sharer_cores(mask):
                counts[c] = counts.get(c, 0) + 1
            if line not in lines and len(lines) < self.max_lines:
                lines.append(line)
        return Verdict(
            time=time,
            detector=self.name,
            score=len(events),
            core=_accuse(counts),
            lines=tuple(lines),
            latency=time - self._first_alarm,
        )


class RegionEwmaDetector:
    """Per-address-region EWMA of alarm activity.

    Alarms (captures **and** pEvicts — captures lead pEvicts, buying
    detection latency) bump an integer fixed-point EWMA for the line's
    region (``line_addr >> region_bits``); per elapsed ``epoch`` of
    cycles the EWMA decays geometrically by ``ewma >> decay_shift``
    (a ``1 - 2**-decay_shift`` factor — gentle enough that a steady
    one-alarm-per-epoch stream converges to
    ``2**decay_shift`` units, not to an unreachable asymptote).  A
    region whose EWMA reaches ``threshold`` units is under sustained
    targeted pressure — the verdict names that region's recent lines.
    """

    name = "ewma"

    def __init__(
        self,
        region_bits: int = 4,
        epoch: int = 5000,
        threshold: int = 3,
        decay_shift: int = 2,
        cooldown: int | None = None,
        max_lines: int = 4,
    ):
        if region_bits < 0:
            raise ValueError("region_bits must be >= 0")
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if decay_shift < 1:
            raise ValueError("decay_shift must be >= 1")
        self.region_bits = region_bits
        self.epoch = epoch
        self.threshold_scaled = threshold * EWMA_SCALE
        self.decay_shift = decay_shift
        self.cooldown = cooldown if cooldown is not None else epoch
        self.max_lines = max_lines
        # region -> [ewma_scaled, last_epoch, last_fire_time, lines, sharer_counts]
        self._regions: dict[int, list] = {}
        self._first_alarm: int | None = None

    def observe(
        self, kind: int, time: int, line_addr: int, core: int, sharers: int
    ) -> Verdict | None:
        if kind != ALARM_CAPTURE and kind != ALARM_PEVICT:
            return None
        if self._first_alarm is None:
            self._first_alarm = time
        region = line_addr >> self.region_bits
        e = time // self.epoch
        state = self._regions.get(region)
        if state is None:
            state = [0, e, None, [], {}]
            self._regions[region] = state
        gap = e - state[1]
        if gap:
            # Geometric decay, one (1 - 2**-k) factor per elapsed
            # epoch.  64 factors shrink any reachable value to the
            # sub-unit range, so longer gaps just reset.
            value = state[0]
            if gap >= 64:
                value = 0
            else:
                shift = self.decay_shift
                for _ in range(gap):
                    value -= value >> shift
            state[0] = value
            state[1] = e
        state[0] += EWMA_SCALE
        lines = state[3]
        if line_addr in lines:
            lines.remove(line_addr)
        lines.insert(0, line_addr)
        del lines[self.max_lines:]
        counts = state[4]
        for c in _sharer_cores(sharers):
            counts[c] = counts.get(c, 0) + 1
        if state[0] < self.threshold_scaled:
            return None
        if state[2] is not None and time - state[2] < self.cooldown:
            return None
        state[2] = time
        return Verdict(
            time=time,
            detector=self.name,
            score=state[0] // EWMA_SCALE,
            core=_accuse(counts),
            lines=tuple(lines),
            latency=time - self._first_alarm,
        )


class CrossCoreCorrelationDetector:
    """pEvicts on one line whose sharer masks span >= 2 cores.

    Tracks, per line, the pEvict alarms of the last ``window`` cycles;
    fires when the line saw at least ``threshold`` of them *and* the
    union of their directory masks names more than one core — the
    line is genuinely bouncing between cores, not being victimised by
    one core's own working set.
    """

    name = "xcore"

    def __init__(
        self,
        window: int = 15000,
        threshold: int = 3,
        cooldown: int | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.window = window
        self.threshold = threshold
        self.cooldown = cooldown if cooldown is not None else window
        # line -> deque[(time, sharers)]
        self._lines: dict[int, deque[tuple[int, int]]] = {}
        self._first_alarm: int | None = None
        self._last_fire: int | None = None

    def observe(
        self, kind: int, time: int, line_addr: int, core: int, sharers: int
    ) -> Verdict | None:
        if kind != ALARM_PEVICT:
            return None
        if self._first_alarm is None:
            self._first_alarm = time
        events = self._lines.get(line_addr)
        if events is None:
            events = deque()
            self._lines[line_addr] = events
        events.append((time, sharers))
        floor = time - self.window
        while events and events[0][0] <= floor:
            events.popleft()
        if len(events) < self.threshold:
            return None
        union = 0
        counts: dict[int, int] = {}
        for _, mask in events:
            union |= mask
            for c in _sharer_cores(mask):
                counts[c] = counts.get(c, 0) + 1
        if union & (union - 1) == 0:
            return None  # zero or one core — no cross-core evidence
        if self._last_fire is not None and time - self._last_fire < self.cooldown:
            return None
        self._last_fire = time
        return Verdict(
            time=time,
            detector=self.name,
            score=len(events),
            core=_accuse(counts),
            lines=(line_addr,),
            latency=time - self._first_alarm,
        )


#: Registry: detector name -> class (CLI, fig10, conformance specs).
DETECTORS = {
    WindowedRateDetector.name: WindowedRateDetector,
    RegionEwmaDetector.name: RegionEwmaDetector,
    CrossCoreCorrelationDetector.name: CrossCoreCorrelationDetector,
}


def build_detector(name: str, params: dict | None = None):
    """Instantiate a registry detector from plain data (picklable
    specs for the experiment fan-out)."""
    if name not in DETECTORS:
        raise ValueError(
            f"unknown detector {name!r} (expected one of {sorted(DETECTORS)})"
        )
    return DETECTORS[name](**(params or {}))


def replay(alarms, detectors) -> list[Verdict]:
    """Feed a recorded alarm stream through fresh detectors.

    Returns every verdict in stream order.  Because detectors are pure
    functions of the stream, this reproduces exactly the verdicts an
    online run with the same detectors would have produced — the
    equivalence the ROC sweep relies on to evaluate many operating
    points from one simulation.
    """
    verdicts: list[Verdict] = []
    for kind, time, line_addr, core, sharers in alarms:
        for detector in detectors:
            verdict = detector.observe(kind, time, line_addr, core, sharers)
            if verdict is not None:
                verdicts.append(verdict)
    return verdicts
