"""Fleet-level detection statistics — sufficient statistics only.

A campaign sweep (``repro-experiment campaign``) runs up to millions of
tenant simulations; materializing per-run detection records would make
memory grow with the fleet.  :class:`FleetDetectionStats` keeps the
whole detection/FP story in **fixed-size sufficient statistics**:

* **attack strata** — keyed by ``(attack kind, secThr, detector)``:
  tenant count, detected count, and a fixed-size
  :class:`~repro.utils.stats.QuantileSketch` of first-detection
  latencies (cycles);
* **benign strata** — keyed by ``(secThr, detector)``: tenant count,
  false verdicts, and total simulated cycles/instructions, from which
  false-positive rates per Mcycle/Minsn follow.

Every fold is a pure function of the observed record, so folding the
same records in the same order reproduces :meth:`state` bit-exactly —
the invariant the campaign's resume-equivalence digest checks.
"""

from __future__ import annotations

from repro.utils.stats import QuantileSketch

#: Latency sketch geometry: detection latencies land between ~1e2 and
#: ~1e8 cycles at every scale the repo runs; 256 log bins keep the
#: relative error ~=2.7 % at a few KB per stratum.
LATENCY_SKETCH = dict(lo=10.0, hi=1e10, bins=256)

#: Quantiles reported per stratum.
QUANTILES = (0.5, 0.9, 0.99)


def detector_desc(name: str, params) -> str:
    """Canonical one-token description of a detector operating point,
    e.g. ``rate(threshold=3,window=12000)`` — the stratum key half."""
    items = sorted(dict(params).items())
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}({inner})"


class FleetDetectionStats:
    """Online accumulator for fleet-level detection/FP curves."""

    def __init__(self) -> None:
        #: "kind|secthr|detector" -> {n, detected, latency sketch}
        self._attack: dict[str, dict] = {}
        #: "secthr|detector" -> {n, verdicts, cycles, instructions}
        self._benign: dict[str, dict] = {}

    # ---- folds -------------------------------------------------------

    def observe_attack(
        self,
        kind: str,
        secthr: int,
        detector: str,
        detected: bool,
        latency: int | None,
    ) -> None:
        """Fold one attacking tenant's outcome into its stratum."""
        key = f"{kind}|{secthr}|{detector}"
        stratum = self._attack.get(key)
        if stratum is None:
            stratum = {
                "n": 0,
                "detected": 0,
                "latency": QuantileSketch(**LATENCY_SKETCH),
            }
            self._attack[key] = stratum
        stratum["n"] += 1
        if detected:
            stratum["detected"] += 1
            if latency is not None:
                stratum["latency"].add(float(latency))

    def observe_benign(
        self,
        secthr: int,
        detector: str,
        verdicts: int,
        cycles: int,
        instructions: int,
    ) -> None:
        """Fold one benign tenant's outcome into its stratum."""
        key = f"{secthr}|{detector}"
        stratum = self._benign.get(key)
        if stratum is None:
            stratum = {"n": 0, "verdicts": 0, "cycles": 0, "instructions": 0}
            self._benign[key] = stratum
        stratum["n"] += 1
        stratum["verdicts"] += verdicts
        stratum["cycles"] += cycles
        stratum["instructions"] += instructions

    # ---- reports -----------------------------------------------------

    @property
    def attack_count(self) -> int:
        return sum(s["n"] for s in self._attack.values())

    @property
    def benign_count(self) -> int:
        return sum(s["n"] for s in self._benign.values())

    def detection_rows(self) -> list[list]:
        """Per-(kind, secThr, detector) detection rate and latency
        quantiles — one table row per attack stratum, sorted by key."""
        rows = []
        for key in sorted(self._attack):
            kind, secthr, detector = key.split("|", 2)
            stratum = self._attack[key]
            quantiles = [
                stratum["latency"].quantile(q) for q in QUANTILES
            ]
            rows.append([
                kind, int(secthr), detector, stratum["n"],
                round(stratum["detected"] / stratum["n"], 3),
                *(int(v) if v is not None else "-" for v in quantiles),
            ])
        return rows

    def fp_rows(self) -> list[list]:
        """Per-(secThr, detector) benign false-positive rates."""
        rows = []
        for key in sorted(self._benign):
            secthr, detector = key.split("|", 1)
            stratum = self._benign[key]
            cycles = max(1, stratum["cycles"])
            insns = max(1, stratum["instructions"])
            rows.append([
                int(secthr), detector, stratum["n"], stratum["verdicts"],
                round(stratum["verdicts"] * 1_000_000 / cycles, 3),
                round(stratum["verdicts"] * 1_000_000 / insns, 3),
            ])
        return rows

    def roc_rows(self) -> list[list]:
        """Per-(secThr, detector) operating points: worst-scenario
        detection rate paired with the benign FP rate — the fleet ROC.

        Only operating points with both attack and benign evidence
        appear (a detector a campaign never paired with benign tenants
        has no FP estimate).
        """
        by_point: dict[tuple[int, str], dict[str, tuple[int, int]]] = {}
        for key, stratum in self._attack.items():
            kind, secthr, detector = key.split("|", 2)
            point = by_point.setdefault((int(secthr), detector), {})
            point[kind] = (stratum["detected"], stratum["n"])
        rows = []
        for (secthr, detector) in sorted(by_point):
            benign = self._benign.get(f"{secthr}|{detector}")
            if benign is None:
                continue
            kinds = by_point[(secthr, detector)]
            rates = {k: d / n for k, (d, n) in kinds.items()}
            cycles = max(1, benign["cycles"])
            rows.append([
                secthr, detector,
                round(min(rates.values()), 3),
                min(rates, key=rates.get),
                round(benign["verdicts"] * 1_000_000 / cycles, 3),
                benign["n"] + sum(n for _, n in kinds.values()),
            ])
        return rows

    # ---- canonical state ---------------------------------------------

    def state(self) -> dict:
        """Canonical (JSON-safe, bit-reproducible) serialization —
        fold order over commutative integer counters does not change
        it, and the digest of the campaign aggregate hashes it."""
        return {
            "attack": {
                key: {
                    "n": stratum["n"],
                    "detected": stratum["detected"],
                    "latency": stratum["latency"].state(),
                }
                for key, stratum in sorted(self._attack.items())
            },
            "benign": {
                key: dict(sorted(stratum.items()))
                for key, stratum in sorted(self._benign.items())
            },
        }
