"""OS response policies — what happens after a verdict.

Every policy turns detector verdicts into *scheduled* actions on the
shared :class:`~repro.utils.events.EventQueue` (never synchronous
mutations: verdicts arrive from inside the access path, where the
hierarchy is mid-operation — the same reason PiPoMonitor's prefetches
are delayed events).  The multicore scheduler drains events between
memory operations, so responses land at deterministic points of the
global timeline and stay bit-identical across engines.

=================  ====================================================
``log``            record verdicts only — the measurement mode the
                   ROC sweeps run in (zero perturbation)
``flush_suspect``  ``clflush`` the accused lines: scrubs the attacker's
                   primed/probed state and the covert channel's shared
                   line, at the cost of the victim's refetches
``throttle_core``  add a fixed latency penalty to every memory
                   operation the accused core sends past its L1 for a
                   fixed duration — degrades the attacker's probe rate
                   (and is what the adaptive attacker reacts to)
``isolate``        TPPD-style targeted partition: reserve LLC
                   residency for the accused lines — each is refilled
                   (tagged) right after any subsequent eviction or
                   flush, so probes of it stop carrying information.
                   Unlike a blanket defence this costs only the
                   accused lines' worth of LLC
=================  ====================================================

Policies are constructed from plain data (:func:`build_response`) so
experiment cells pickle across the ``REPRO_JOBS`` fan-out.
"""

from __future__ import annotations

from repro.detection.detectors import Verdict

#: Cycles between a verdict and its response landing (the OS's
#: reaction time; same order as the monitor's prefetch delay).
DEFAULT_RESPONSE_DELAY = 40


class LogPolicy:
    """Record verdicts; touch nothing (the ROC measurement mode)."""

    name = "log"

    def __init__(self):
        self.unit = None

    def bind(self, unit) -> None:
        self.unit = unit

    def on_verdict(self, verdict: Verdict) -> None:
        pass

    def summary(self) -> dict:
        return {}


class FlushSuspectPolicy(LogPolicy):
    """``clflush`` the accused lines after the verdict.

    Each verdict schedules a *burst*: ``burst`` flushes per accused
    line, spaced ``interval`` cycles apart.  A single flush at the
    verdict instant is trivially repaired by the next transfer on a
    self-clocked channel; a burst keeps landing flushes at phases the
    endpoints did not agree on, which is what actually injects errors.
    """

    name = "flush_suspect"

    def __init__(
        self,
        delay: int = DEFAULT_RESPONSE_DELAY,
        burst: int = 8,
        interval: int = 1100,
    ):
        super().__init__()
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.delay = delay
        self.burst = burst
        self.interval = interval
        self.flushes_requested = 0

    def on_verdict(self, verdict: Verdict) -> None:
        unit = self.unit
        hierarchy = unit.hierarchy
        line_bits = hierarchy._line_bits
        for line_addr in verdict.lines:
            for shot in range(self.burst):
                fire_at = verdict.time + self.delay + shot * self.interval
                self.flushes_requested += 1
                unit.events.schedule(
                    fire_at,
                    # Issued "by the OS": core 0 is the issuing-core
                    # slot; clflush scrubs every core's copies
                    # regardless.
                    lambda a=line_addr << line_bits, t=fire_at: (
                        hierarchy.clflush(0, a, t)
                    ),
                    label=f"response-flush:{line_addr:#x}",
                )

    def summary(self) -> dict:
        return {"flushes_requested": self.flushes_requested}


class ThrottleCorePolicy(LogPolicy):
    """Penalise the accused core's memory operations for a while.

    The penalty applies to every operation the core sends through its
    access kernel (anything past an L1 read hit — exactly the probes,
    flushes, and misses an attack is made of).  Repeat verdicts extend
    the throttle window.  Verdicts that accuse no core (``core == -1``,
    e.g. against a Flush+Flush attacker who never holds the line) are
    counted but unanswered — the stealthy-attacker limitation the
    fig10 response table quantifies.
    """

    name = "throttle_core"

    def __init__(
        self,
        penalty: int = 300,
        duration: int = 20000,
        delay: int = DEFAULT_RESPONSE_DELAY,
    ):
        super().__init__()
        if penalty < 1:
            raise ValueError("penalty must be >= 1")
        if duration < 1:
            raise ValueError("duration must be >= 1")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.penalty = penalty
        self.duration = duration
        self.delay = delay
        self.throttles_applied = 0
        self.unattributed_verdicts = 0

    def on_verdict(self, verdict: Verdict) -> None:
        if verdict.core < 0:
            self.unattributed_verdicts += 1
            return
        self.throttles_applied += 1
        unit = self.unit
        fire_at = verdict.time + self.delay
        unit.events.schedule(
            fire_at,
            lambda c=verdict.core, t=fire_at: unit.throttle_core(
                c, self.penalty, t + self.duration
            ),
            label=f"response-throttle:core{verdict.core}",
        )

    def summary(self) -> dict:
        return {
            "throttles_applied": self.throttles_applied,
            "unattributed_verdicts": self.unattributed_verdicts,
            "penalty": self.penalty,
        }


class IsolatePolicy(LogPolicy):
    """Reserve LLC residency for the accused lines (targeted
    partition).  The unit keeps refilling an isolated line (tagged)
    after every later eviction/flush alarm, so the line stays resident
    and timing probes of it go flat."""

    name = "isolate"

    def __init__(self, delay: int = DEFAULT_RESPONSE_DELAY):
        super().__init__()
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay
        self.lines_isolated = 0

    def on_verdict(self, verdict: Verdict) -> None:
        unit = self.unit
        for line_addr in verdict.lines:
            if unit.isolate_line(line_addr):
                self.lines_isolated += 1
                # Seat the line immediately; later alarms re-seat it.
                unit.schedule_guard_refill(line_addr, verdict.time + self.delay)

    def summary(self) -> dict:
        return {"lines_isolated": self.lines_isolated}


#: Registry: response name -> class.
RESPONSES = {
    LogPolicy.name: LogPolicy,
    FlushSuspectPolicy.name: FlushSuspectPolicy,
    ThrottleCorePolicy.name: ThrottleCorePolicy,
    IsolatePolicy.name: IsolatePolicy,
}


def build_response(name: str, params: dict | None = None):
    """Instantiate a registry policy from plain data."""
    if name not in RESPONSES:
        raise ValueError(
            f"unknown response {name!r} (expected one of {sorted(RESPONSES)})"
        )
    return RESPONSES[name](**(params or {}))
