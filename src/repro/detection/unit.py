"""The detection unit: alarm bus → detectors → response policy.

One :class:`DetectionUnit` per simulated system.  It subscribes to the
monitor's :class:`~repro.utils.events.AlarmBus`, feeds every alarm
through its detectors online, hands verdicts to the response policy,
and owns the response mechanics the policies share (throttle wrappers
on cores, the isolated-line guard).  Its :meth:`report` is attached to
``SimulationResult.extra["detection"]`` by the multicore scheduler —
the canonical, golden-able record of what the subsystem saw and did.

:class:`DetectionSpec` is the plain-data description of a unit
(detector names + params, response name + params) so experiment cells
carry detection configs across the ``REPRO_JOBS`` process fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.detectors import Verdict, build_detector
from repro.detection.responses import build_response
from repro.utils.events import ALARM_CAPTURE, AlarmBus, EventQueue

#: Cycles between an alarm on an isolated line and its guard refill.
DEFAULT_GUARD_DELAY = 40

#: Verdict-log cap inside :meth:`DetectionUnit.report` (full count is
#: always reported; the tail is elided to keep goldens reviewable).
REPORT_VERDICT_CAP = 64


class DetectionUnit:
    """Wires one bus, a detector set, and one response policy."""

    def __init__(
        self,
        detectors,
        policy,
        events: EventQueue,
        hierarchy,
        cores=None,
        guard_delay: int = DEFAULT_GUARD_DELAY,
    ):
        self.detectors = list(detectors)
        self.policy = policy
        self.events = events
        self.hierarchy = hierarchy
        self.cores = list(cores) if cores is not None else []
        self.guard_delay = guard_delay
        self.bus: AlarmBus | None = None
        self.verdicts: list[Verdict] = []
        self.alarms_seen = 0
        self.isolated: set[int] = set()
        self.guard_refills = 0
        self.guard_reseats = 0
        # core_id -> throttle expiry time (absent = unthrottled).
        self._throttle_expiry: dict[int, int] = {}
        self.throttle_windows = 0
        policy.bind(self)

    # ------------------------------------------------------------------
    # Bus plumbing
    # ------------------------------------------------------------------

    def subscribe_to(self, bus: AlarmBus) -> None:
        self.bus = bus
        bus.subscribe(self.on_alarm)

    def on_alarm(
        self, kind: int, time: int, line_addr: int, core: int, sharers: int
    ) -> None:
        """One alarm: detectors first, then the isolation guard."""
        self.alarms_seen += 1
        for detector in self.detectors:
            verdict = detector.observe(kind, time, line_addr, core, sharers)
            if verdict is not None:
                self.verdicts.append(verdict)
                self.policy.on_verdict(verdict)
        if (
            self.isolated
            and kind != ALARM_CAPTURE
            and line_addr in self.isolated
        ):
            # The line just left the LLC (pEvict or suppressed):
            # re-seat it — the partition guarantees residency.
            self.guard_reseats += 1
            self.schedule_guard_refill(line_addr, time + self.guard_delay)

    # ------------------------------------------------------------------
    # Response mechanics shared by the policies
    # ------------------------------------------------------------------

    def isolate_line(self, line_addr: int) -> bool:
        """Mark a line isolated; returns False when already isolated."""
        if line_addr in self.isolated:
            return False
        self.isolated.add(line_addr)
        return True

    def schedule_guard_refill(self, line_addr: int, fire_at: int) -> None:
        """Schedule a tagged prefetch fill of an isolated line."""
        def refill(addr=line_addr, t=fire_at):
            if self.hierarchy.prefetch_fill(addr, t, tag=True):
                self.guard_refills += 1

        self.events.schedule(
            fire_at, refill, label=f"isolate-refill:{line_addr:#x}"
        )

    def throttle_core(self, core_id: int, penalty: int, until: int) -> None:
        """(Re)arm the throttle on one core until ``until``.

        The wrapper adds ``penalty`` cycles to every operation served
        through the core's access kernel; an expiry event restores the
        original binding (re-verdicts extend the window — the latest
        expiry wins).
        """
        core = self.cores[core_id]
        already = core_id in self._throttle_expiry
        current = self._throttle_expiry.get(core_id, 0)
        if until <= current:
            return
        self._throttle_expiry[core_id] = until
        if not already:
            self.throttle_windows += 1
            core.throttle(penalty)
        self.events.schedule(
            until,
            lambda c=core_id, t=until: self._maybe_unthrottle(c, t),
            label=f"unthrottle:core{core_id}",
        )

    def _maybe_unthrottle(self, core_id: int, scheduled_until: int) -> None:
        if self._throttle_expiry.get(core_id) == scheduled_until:
            del self._throttle_expiry[core_id]
            self.cores[core_id].unthrottle()

    # ------------------------------------------------------------------

    @property
    def detected(self) -> bool:
        return bool(self.verdicts)

    @property
    def first_detection_time(self) -> int | None:
        return self.verdicts[0].time if self.verdicts else None

    @property
    def first_detection_latency(self) -> int | None:
        return self.verdicts[0].latency if self.verdicts else None

    def report(self) -> dict:
        """Canonical (JSON-safe) record of the run's detection story.

        When the bus logs alarms (``DetectionSpec.log_alarms``), the
        full stream rides along as ``alarm_log`` — the input the ROC
        sweeps replay offline through other detector configurations.
        """
        per_detector: dict[str, int] = {d.name: 0 for d in self.detectors}
        for verdict in self.verdicts:
            per_detector[verdict.detector] += 1
        report: dict = {
            "alarms_seen": self.alarms_seen,
            "alarms_published": (
                self.bus.published if self.bus is not None else 0
            ),
            "verdicts": len(self.verdicts),
            "verdicts_by_detector": per_detector,
            "first_detection_time": self.first_detection_time,
            "first_detection_latency": self.first_detection_latency,
            "verdict_log": [
                {
                    "time": v.time,
                    "detector": v.detector,
                    "score": v.score,
                    "core": v.core,
                    "lines": list(v.lines),
                    "latency": v.latency,
                }
                for v in self.verdicts[:REPORT_VERDICT_CAP]
            ],
            "response": self.policy.name,
            "response_summary": self.policy.summary(),
            "isolated_lines": sorted(self.isolated),
            "guard_refills": self.guard_refills,
            "guard_reseats": self.guard_reseats,
            "throttle_windows": self.throttle_windows,
        }
        if self.bus is not None and self.bus.log is not None:
            report["alarm_log"] = [list(alarm) for alarm in self.bus.log]
        return report


@dataclass
class DetectionSpec:
    """Plain-data description of a detection unit (picklable).

    ``detectors`` is a tuple of ``(name, params)`` pairs;
    ``response`` / ``response_params`` name a policy.  ``log_alarms``
    keeps the full alarm stream on the bus for offline ROC replay.
    """

    detectors: tuple = (("rate", None),)
    response: str = "log"
    response_params: dict | None = None
    log_alarms: bool = True
    guard_delay: int = DEFAULT_GUARD_DELAY
    extra: dict = field(default_factory=dict)

    def build_bus(self) -> AlarmBus:
        return AlarmBus(log=self.log_alarms)

    def attach_bus(self, monitor) -> AlarmBus:
        """Phase 1 of deployment — **before core construction**: each
        core compiles its access kernel when built, and the publish
        sites are baked in only if the monitor already carries the
        bus.  Returns the bus for :meth:`deploy`."""
        if monitor is None:
            raise ValueError(
                "detection requires a defence that publishes alarms "
                "(a monitor must be attached to the hierarchy)"
            )
        bus = self.build_bus()
        monitor.alarms = bus
        return bus

    def deploy(self, bus: AlarmBus, events, hierarchy, cores) -> DetectionUnit:
        """Phase 2 — after core construction: build the unit (the
        throttle response needs the cores) and subscribe it."""
        unit = self.build_unit(events, hierarchy, cores)
        unit.subscribe_to(bus)
        return unit

    def build_unit(
        self, events: EventQueue, hierarchy, cores
    ) -> DetectionUnit:
        detectors = [
            build_detector(name, params) for name, params in self.detectors
        ]
        policy = build_response(self.response, self.response_params)
        return DetectionUnit(
            detectors,
            policy,
            events,
            hierarchy,
            cores=cores,
            guard_delay=self.guard_delay,
        )
