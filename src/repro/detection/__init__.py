"""Online detection & response — pEvict alarms → OS policies.

The paper stops at "PiPoMonitor can further inform the OS" — this
package is that step, layered on the simulator:

* monitors publish captures/pEvicts on an
  :class:`~repro.utils.events.AlarmBus` (gated at kernel build time,
  so un-bussed configurations pay nothing);
* :mod:`~repro.detection.detectors` turn the stream into verdicts
  (windowed rate, per-region EWMA, cross-core correlation);
* :mod:`~repro.detection.responses` turn verdicts into scheduled OS
  actions (log / flush_suspect / throttle_core / isolate);
* :mod:`~repro.detection.unit` wires one system's bus, detectors, and
  policy, and reports through ``SimulationResult.extra["detection"]``.

Entry point for experiments: pass a :class:`DetectionSpec` to
``repro.cpu.system.run_defended_workloads`` (or the attack runners'
``detection=`` parameter).  ``repro-experiment fig10`` sweeps the
resulting ROC surface.
"""

from repro.detection.detectors import (
    DETECTORS,
    CrossCoreCorrelationDetector,
    RegionEwmaDetector,
    Verdict,
    WindowedRateDetector,
    build_detector,
    replay,
)
from repro.detection.responses import (
    RESPONSES,
    FlushSuspectPolicy,
    IsolatePolicy,
    LogPolicy,
    ThrottleCorePolicy,
    build_response,
)
from repro.detection.fleet import FleetDetectionStats, detector_desc
from repro.detection.unit import DetectionSpec, DetectionUnit

__all__ = [
    "DETECTORS",
    "RESPONSES",
    "CrossCoreCorrelationDetector",
    "DetectionSpec",
    "DetectionUnit",
    "FleetDetectionStats",
    "FlushSuspectPolicy",
    "IsolatePolicy",
    "LogPolicy",
    "RegionEwmaDetector",
    "ThrottleCorePolicy",
    "Verdict",
    "WindowedRateDetector",
    "build_detector",
    "build_response",
    "detector_desc",
    "replay",
]
