"""Setuptools shim.

Kept alongside pyproject.toml so the package can be installed in
fully-offline environments that lack the ``wheel`` package, via::

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
